// Protocol-robustness fuzzing of the v2 RPC server: randomized, truncated,
// and oversized frames — including bad correlation IDs and v1 frames against
// a v2 server — must end every connection with kBadRequest /
// kUnsupportedVersion (or a clean close for frames the server never fully
// received), never a hang or a crash, and must leave the server healthy for
// well-behaved clients.

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstring>
#include <string>
#include <vector>

#include <atomic>
#include <chrono>
#include <thread>

#include "common/random.h"
#include "core/algorithm_api.h"
#include "net/rpc_client.h"
#include "net/rpc_server.h"
#include "rpc_test_util.h"
#include "runtime/risgraph.h"
#include "runtime/service.h"
#include "subscribe/publisher.h"
#include "subscribe/registry.h"

namespace risgraph {
namespace {

using testutil::HandshakeRaw;
using testutil::RawConnect;
using testutil::ReadFrameRaw;
using testutil::SendFrameRaw;

class RpcFuzzTest : public ::testing::Test {
 protected:
  static constexpr uint64_t kVertices = 64;

  void SetUp() override {
    socket_path_ = "/tmp/risgraph_fuzz_" +
                   std::to_string(reinterpret_cast<uintptr_t>(this)) + ".sock";
    sys_ = std::make_unique<RisGraph<>>(kVertices);
    bfs_ = sys_->AddAlgorithm<Bfs>(0);
    sys_->InitializeResults();
    service_ = std::make_unique<RisGraphService<>>(*sys_);
    // Subscriptions live so the v2.1 opcodes are fully reachable under fuzz.
    registry_ = std::make_unique<SubscriptionRegistry>();
    publisher_ = std::make_unique<ChangePublisher>(*registry_);
    service_->AttachPublisher(publisher_.get());
    server_ = std::make_unique<RpcServer>(*sys_, *service_, socket_path_);
    ASSERT_TRUE(server_->Start(/*max_clients=*/512));
    service_->Start();
  }

  void TearDown() override {
    server_->Stop();
    service_->Stop();
  }

  /// Asserts the expected terminal shape of a poisoned connection: exactly
  /// one kBadRequest response echoing `expect_corr`, then EOF.
  void ExpectBadRequestThenClose(int fd, uint64_t expect_corr) {
    std::vector<uint8_t> resp;
    ASSERT_TRUE(ReadFrameRaw(fd, &resp)) << "no response (hang or drop?)";
    ASSERT_EQ(resp.size(), 9u);
    uint64_t corr = 0;
    std::memcpy(&corr, resp.data(), 8);
    EXPECT_EQ(corr, expect_corr);
    EXPECT_EQ(resp[8], static_cast<uint8_t>(rpc::Status::kBadRequest));
    uint8_t byte;
    EXPECT_EQ(::read(fd, &byte, 1), 0) << "connection not closed";
  }

  std::string socket_path_;
  std::unique_ptr<RisGraph<>> sys_;
  size_t bfs_ = 0;
  std::unique_ptr<RisGraphService<>> service_;
  std::unique_ptr<SubscriptionRegistry> registry_;
  std::unique_ptr<ChangePublisher> publisher_;
  std::unique_ptr<RpcServer> server_;
};

TEST_F(RpcFuzzTest, GarbageFirstFramesAreRejectedAsUnsupportedVersion) {
  // Whatever the first frame is — v1 opcodes, random bytes, a Hello with the
  // wrong magic — a peer that never completes the handshake gets the
  // one-byte kUnsupportedVersion frame and a close.
  Rng rng(42);
  for (int round = 0; round < 64; ++round) {
    int fd = RawConnect(socket_path_);
    ASSERT_GE(fd, 0);
    std::vector<uint8_t> frame;
    switch (round % 4) {
      case 0:  // v1 single-opcode frame
        frame = {static_cast<uint8_t>(rng.NextBounded(12))};
        break;
      case 1: {  // v1 update frame
        rpc::Writer w(frame);
        w.U8(1 + rng.NextBounded(2));
        w.U64(rng.NextBounded(kVertices));
        w.U64(rng.NextBounded(kVertices));
        w.U64(1);
        break;
      }
      case 2: {  // random bytes
        size_t n = 1 + rng.NextBounded(48);
        for (size_t i = 0; i < n; ++i) {
          frame.push_back(static_cast<uint8_t>(rng.NextBounded(256)));
        }
        // Guard the one-in-billions case where random bytes spell a valid
        // Hello: stomp the magic's first byte.
        if (frame.size() >= 13) frame[9] ^= 0xa5;
        break;
      }
      case 3: {  // well-formed Hello, wrong magic
        rpc::Writer w(frame);
        rpc::WriteRequestHeader(w, rng.Next(), rpc::Op::kHello);
        w.U32(rpc::kHelloMagic ^ 0x1);
        w.U16(rpc::kMinSupportedVersion);
        w.U16(rpc::kProtocolVersion);
        break;
      }
    }
    ASSERT_TRUE(SendFrameRaw(fd, frame));
    std::vector<uint8_t> resp;
    ASSERT_TRUE(ReadFrameRaw(fd, &resp)) << "round " << round;
    ASSERT_EQ(resp.size(), 1u) << "round " << round;
    EXPECT_EQ(resp[0],
              static_cast<uint8_t>(rpc::Status::kUnsupportedVersion));
    uint8_t byte;
    EXPECT_EQ(::read(fd, &byte, 1), 0) << "round " << round;
    ::close(fd);
  }
  EXPECT_GE(server_->handshakes_rejected(), 64u);
}

TEST_F(RpcFuzzTest, MalformedFramesAfterHandshakeEndWithBadRequest) {
  Rng rng(1234);
  for (int round = 0; round < 128; ++round) {
    int fd = RawConnect(socket_path_);
    ASSERT_GE(fd, 0);
    ASSERT_TRUE(HandshakeRaw(fd)) << "round " << round;

    // Bad correlation IDs are part of the sweep: 0, max, random — the server
    // must echo them verbatim, never interpret them.
    uint64_t corr = 0;
    switch (rng.NextBounded(3)) {
      case 0: corr = 0; break;
      case 1: corr = ~uint64_t{0}; break;
      default: corr = rng.Next(); break;
    }
    std::vector<uint8_t> frame;
    rpc::Writer w(frame);
    uint64_t expect_corr = corr;
    switch (rng.NextBounded(10)) {
      case 0: {  // invalid opcode
        w.U64(corr);
        w.U8(16 + static_cast<uint8_t>(rng.NextBounded(240)));
        size_t n = rng.NextBounded(16);
        for (size_t i = 0; i < n; ++i) w.U8(0);
        break;
      }
      case 1: {  // valid opcode, truncated body
        w.U64(corr);
        w.U8(static_cast<uint8_t>(rpc::Op::kInsEdge));
        size_t n = rng.NextBounded(24);  // needs exactly 24
        for (size_t i = 0; i < n; ++i) w.U8(0x11);
        break;
      }
      case 2: {  // valid opcode, oversized body
        w.U64(corr);
        w.U8(static_cast<uint8_t>(rpc::Op::kGetValue));
        size_t n = 17 + rng.NextBounded(16);  // needs exactly 16
        for (size_t i = 0; i < n; ++i) w.U8(0x22);
        break;
      }
      case 3: {  // kTxn with an absurd count
        w.U64(corr);
        w.U8(static_cast<uint8_t>(rpc::Op::kTxn));
        w.U32(rpc::kMaxBatchUpdates + 1 + rng.NextBounded(1 << 20));
        break;
      }
      case 4: {  // kUpdateBatch whose count disagrees with the body
        w.U64(corr);
        w.U8(static_cast<uint8_t>(rpc::Op::kUpdateBatch));
        w.U32(4);
        rpc::WriteUpdate(w, Update::InsertEdge(0, 1, 1));  // only one update
        break;
      }
      case 5: {  // kSubmitPipelined with an invalid update kind
        w.U64(corr);
        w.U8(static_cast<uint8_t>(rpc::Op::kSubmitPipelined));
        w.U8(4 + static_cast<uint8_t>(rng.NextBounded(250)));  // kind > 3
        w.U64(0);
        w.U64(1);
        w.U64(1);
        break;
      }
      case 6: {  // kSubscribe truncated mid-header or mid-vertex-list
        w.U64(corr);
        w.U8(static_cast<uint8_t>(rpc::Op::kSubscribe));
        size_t n = rng.NextBounded(22);  // header alone needs exactly 22
        for (size_t i = 0; i < n; ++i) w.U8(0x33);
        break;
      }
      case 7: {  // kSubscribe whose vertex count disagrees with the body
        w.U64(corr);
        w.U8(static_cast<uint8_t>(rpc::Op::kSubscribe));
        w.U64(0);                  // algo
        w.U8(0);                   // watch_all = false
        w.U8(0);                   // predicate
        w.U64(0);                  // threshold
        w.U32(7);                  // promises 7 vertices...
        w.U64(1);                  // ...delivers one
        break;
      }
      case 8: {  // kSubscribe with an absurd count / bad predicate /
                 // watch-all carrying a dead-weight vertex list
        w.U64(corr);
        w.U8(static_cast<uint8_t>(rpc::Op::kSubscribe));
        w.U64(0);
        switch (rng.NextBounded(3)) {
          case 0:
            w.U8(0);
            w.U8(0);
            w.U64(0);
            w.U32(rpc::kMaxSubscribeVertices + 1 + rng.NextBounded(1 << 16));
            break;
          case 1:
            w.U8(0);
            w.U8(kMaxNotifyPredicate + 1 +
                 static_cast<uint8_t>(rng.NextBounded(200)));
            w.U64(0);
            w.U32(0);
            break;
          default:
            w.U8(1);  // watch_all...
            w.U8(0);
            w.U64(0);
            w.U32(1);  // ...with a vertex list
            w.U64(3);
            break;
        }
        break;
      }
      default: {  // header too short to carry [corr][opcode]
        size_t n = 1 + rng.NextBounded(rpc::kRequestHeaderBytes - 1);
        for (size_t i = 0; i < n; ++i) {
          w.U8(static_cast<uint8_t>(rng.NextBounded(256)));
        }
        expect_corr = 0;  // the server could not read one
        break;
      }
    }
    ASSERT_TRUE(SendFrameRaw(fd, frame));
    ExpectBadRequestThenClose(fd, expect_corr);
    ::close(fd);
  }

  // The server survived the sweep and still serves well-behaved clients.
  RpcClient client;
  ASSERT_TRUE(client.Connect(socket_path_));
  EXPECT_TRUE(client.Ping());
  EXPECT_NE(client.InsEdge(0, 1), kInvalidVersion);
}

TEST_F(RpcFuzzTest, TruncatedAndOversizedFramesCloseCleanly) {
  Rng rng(7);
  for (int round = 0; round < 32; ++round) {
    int fd = RawConnect(socket_path_);
    ASSERT_GE(fd, 0);
    ASSERT_TRUE(HandshakeRaw(fd));
    if (round % 2 == 0) {
      // Truncated: the header promises more bytes than ever arrive. The
      // server cannot answer a frame it never received — the connection
      // must simply close once we give up (no hang).
      uint32_t claimed = 32 + static_cast<uint32_t>(rng.NextBounded(256));
      ASSERT_EQ(::write(fd, &claimed, 4), 4);
      size_t sent = rng.NextBounded(claimed);
      std::vector<uint8_t> partial(sent, 0xab);
      if (sent > 0) {
        ASSERT_EQ(::write(fd, partial.data(), sent),
                  static_cast<ssize_t>(sent));
      }
      ::shutdown(fd, SHUT_WR);  // EOF mid-frame
    } else {
      // Oversized or zero length prefix: dropped before reading a body.
      uint32_t claimed =
          round % 4 == 1 ? 0 : rpc::kMaxFrameBytes + 1 + rng.NextBounded(99);
      ASSERT_EQ(::write(fd, &claimed, 4), 4);
    }
    uint8_t byte;
    EXPECT_LE(::read(fd, &byte, 1), 0) << "round " << round;  // EOF, no hang
    ::close(fd);
  }

  RpcClient client;
  ASSERT_TRUE(client.Connect(socket_path_));
  EXPECT_TRUE(client.Ping());
}

TEST_F(RpcFuzzTest, UnknownAndRandomUnsubscribeIdsAreSoftErrors) {
  // kUnsubscribe with ids that were never issued (or already retired) is a
  // well-formed request: kError, connection stays usable — a fuzzing
  // client must not be able to wedge the server by guessing ids.
  RpcClient client;
  ASSERT_TRUE(client.Connect(socket_path_));
  Rng rng(99);
  for (int i = 0; i < 64; ++i) {
    EXPECT_FALSE(client.Unsubscribe(rng.Next()));
  }
  uint64_t sub = client.Subscribe(SubscriptionFilter::WatchAll(bfs_));
  ASSERT_NE(sub, 0u);
  EXPECT_TRUE(client.Unsubscribe(sub));
  EXPECT_FALSE(client.Unsubscribe(sub));  // double-unsubscribe: soft error
  EXPECT_TRUE(client.Ping());
}

TEST_F(RpcFuzzTest, SubscribeUnsubscribeChurnUnderUpdateLoadNeverWedges) {
  // The unsubscribed-id race, fuzz-flavored: subscriptions churn (some
  // unsubscribes targeting random never-issued ids) while updates stream
  // and pushes are in flight. Neither side may hang, crash, or desync.
  RpcClient subscriber;
  ASSERT_TRUE(subscriber.Connect(socket_path_));
  RpcClient writer;
  ASSERT_TRUE(writer.Connect(socket_path_));
  std::atomic<bool> done{false};
  std::thread stream([&] {
    uint64_t i = 1;
    while (!done.load(std::memory_order_acquire)) {
      writer.InsEdge(0, i % kVertices);
      writer.DelEdge(0, i % kVertices);
      ++i;
    }
  });
  Rng rng(7);
  std::vector<Notification> drain;
  for (int round = 0; round < 64; ++round) {
    uint64_t sub = subscriber.Subscribe(
        rng.NextBounded(2) == 0
            ? SubscriptionFilter::WatchAll(bfs_)
            : SubscriptionFilter::WatchVertices(
                  bfs_, {rng.NextBounded(kVertices)}));
    ASSERT_NE(sub, 0u);
    if (rng.NextBounded(2) == 0) subscriber.WaitNotification(1000);
    if (rng.NextBounded(4) == 0) subscriber.Unsubscribe(rng.Next());
    drain.clear();
    subscriber.PollNotifications(&drain);
    ASSERT_TRUE(subscriber.Unsubscribe(sub));
  }
  done.store(true, std::memory_order_release);
  stream.join();
  EXPECT_TRUE(subscriber.Ping());
  EXPECT_TRUE(writer.Ping());
}

// Client-side robustness: a (hostile or buggy) server pushing kNotify
// frames for subscription ids the client never registered must not hang,
// crash, or leak unbounded memory; a structurally malformed kNotify is a
// framing desync and must end in a clean close, not a wedge.
TEST(RpcClientNotifyFuzzTest, UnknownIdAndMalformedNotifyFrames) {
  using namespace testutil;
  std::string path =
      "/tmp/risgraph_fake_notify_" + std::to_string(::getpid()) + ".sock";
  int lfd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(lfd, 0);
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  ::unlink(path.c_str());
  ASSERT_EQ(::bind(lfd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  ASSERT_EQ(::listen(lfd, 1), 0);

  std::thread fake_server([&] {
    int cfd = ::accept(lfd, nullptr, nullptr);
    ASSERT_GE(cfd, 0);
    // Hello -> negotiate v2.1.
    std::vector<uint8_t> frame;
    ASSERT_TRUE(ReadFrameRaw(cfd, &frame));
    std::vector<uint8_t> resp;
    rpc::Writer hw(resp);
    rpc::WriteResponseHeader(hw, 0, rpc::Status::kOk);
    hw.U16(rpc::kSubscriptionVersion);
    ASSERT_TRUE(SendFrameRaw(cfd, resp));
    // Storm of well-formed kNotify frames for ids the client never
    // subscribed — enough to overflow the client's bounded orphan stash.
    for (uint64_t f = 0; f < 10; ++f) {
      resp.clear();
      rpc::Writer nw(resp);
      nw.U64(1000 + f);  // unknown subscription id
      nw.U8(static_cast<uint8_t>(rpc::Status::kNotify));
      constexpr uint32_t kEntries = 600;
      nw.U32(kEntries);
      for (uint32_t e = 0; e < kEntries; ++e) {
        nw.U64(f + 1);  // version
        nw.U64(e);      // vertex
        nw.U64(0);
        nw.U64(e);
      }
      ASSERT_TRUE(SendFrameRaw(cfd, resp));
    }
    // Serve one real request so the client provably survived the storm.
    ASSERT_TRUE(ReadFrameRaw(cfd, &frame));
    ASSERT_GE(frame.size(), rpc::kRequestHeaderBytes);
    uint64_t corr = 0;
    std::memcpy(&corr, frame.data(), 8);
    resp.clear();
    rpc::Writer pw(resp);
    rpc::WriteResponseHeader(pw, corr, rpc::Status::kOk);
    ASSERT_TRUE(SendFrameRaw(cfd, resp));
    // Finally a malformed kNotify: the count promises entries the frame
    // does not carry. The client must drop the connection cleanly.
    resp.clear();
    rpc::Writer mw(resp);
    mw.U64(77);
    mw.U8(static_cast<uint8_t>(rpc::Status::kNotify));
    mw.U32(5);
    mw.U64(1);  // 8 bytes instead of 5 * 32
    ASSERT_TRUE(SendFrameRaw(cfd, resp));
    uint8_t byte;
    ::read(cfd, &byte, 1);  // wait for the client's close
    ::close(cfd);
  });

  RpcClient client;
  ASSERT_TRUE(client.Connect(path));
  EXPECT_TRUE(client.Ping());  // answered mid-storm
  // Nothing was delivered (the ids are unknown) and the overflow beyond the
  // orphan stash was counted stray, not buffered without bound.
  std::vector<Notification> out;
  EXPECT_EQ(client.PollNotifications(&out), 0u);
  EXPECT_GT(client.stray_notification_count(), 0u);
  // After the malformed push the reader must shut the connection down —
  // bounded wait, then every call fails fast instead of hanging.
  for (int spin = 0; spin < 5000 && client.IsConnected(); ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_FALSE(client.IsConnected());
  EXPECT_FALSE(client.Ping());
  client.Close();
  fake_server.join();
  ::close(lfd);
  ::unlink(path.c_str());
}

TEST_F(RpcFuzzTest, HelloAfterHandshakeIsAProtocolViolation) {
  int fd = RawConnect(socket_path_);
  ASSERT_GE(fd, 0);
  ASSERT_TRUE(HandshakeRaw(fd));
  std::vector<uint8_t> again;
  rpc::Writer w(again);
  rpc::WriteRequestHeader(w, 77, rpc::Op::kHello);
  w.U32(rpc::kHelloMagic);
  w.U16(rpc::kMinSupportedVersion);
  w.U16(rpc::kProtocolVersion);
  ASSERT_TRUE(SendFrameRaw(fd, again));
  ExpectBadRequestThenClose(fd, 77);
  ::close(fd);
}

}  // namespace
}  // namespace risgraph
