#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <thread>
#include <vector>

#include "common/random.h"
#include "storage/graph_store.h"

namespace risgraph {
namespace {

TEST(GraphStore, InsertAndIterateBothDirections) {
  DefaultGraphStore store(5);
  store.InsertEdge(Edge{0, 1, 10});
  store.InsertEdge(Edge{0, 2, 20});
  store.InsertEdge(Edge{3, 1, 30});
  EXPECT_EQ(store.NumEdges(), 3u);
  EXPECT_EQ(store.OutDegree(0), 2u);
  EXPECT_EQ(store.InDegree(1), 2u);

  std::map<VertexId, Weight> out0;
  store.ForEachOut(0, [&](VertexId dst, Weight w, uint64_t) { out0[dst] = w; });
  EXPECT_EQ(out0, (std::map<VertexId, Weight>{{1, 10}, {2, 20}}));

  std::map<VertexId, Weight> in1;
  store.ForEachIn(1, [&](VertexId src, Weight w, uint64_t) { in1[src] = w; });
  EXPECT_EQ(in1, (std::map<VertexId, Weight>{{0, 10}, {3, 30}}));
}

TEST(GraphStore, DeleteKeepsTransposeConsistent) {
  DefaultGraphStore store(4);
  store.InsertEdge(Edge{0, 1, 5});
  store.InsertEdge(Edge{0, 1, 5});  // duplicate
  EXPECT_EQ(store.DeleteEdge(Edge{0, 1, 5}), DeleteResult::kDecremented);
  EXPECT_EQ(store.EdgeCount(0, EdgeKey{1, 5}), 1u);
  uint64_t in_count = 0;
  store.ForEachIn(1, [&](VertexId, Weight, uint64_t c) { in_count = c; });
  EXPECT_EQ(in_count, 1u);
  EXPECT_EQ(store.DeleteEdge(Edge{0, 1, 5}), DeleteResult::kRemoved);
  EXPECT_EQ(store.InDegree(1), 0u);
  EXPECT_EQ(store.DeleteEdge(Edge{0, 1, 5}), DeleteResult::kNotFound);
  EXPECT_EQ(store.NumEdges(), 0u);
}

TEST(GraphStore, VertexAddRemoveRecycle) {
  DefaultGraphStore store(2);
  VertexId v = store.AddVertex();
  EXPECT_EQ(v, 2u);
  store.InsertEdge(Edge{v, 0, 1});
  EXPECT_FALSE(store.RemoveVertex(v));  // not isolated
  store.DeleteEdge(Edge{v, 0, 1});
  EXPECT_TRUE(store.RemoveVertex(v));
  EXPECT_EQ(store.AddVertex(), v);  // id recycled
  // Removing a vertex with only in-edges is also rejected.
  VertexId u = store.AddVertex();
  store.InsertEdge(Edge{0, u, 1});
  EXPECT_FALSE(store.RemoveVertex(u));
}

TEST(GraphStore, ConcurrentInsertsOnDisjointAndSharedVertices) {
  DefaultGraphStore store(64);
  constexpr int kThreads = 8;
  constexpr int kPerThread = 2000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&store, t] {
      Rng rng(t);
      for (int i = 0; i < kPerThread; ++i) {
        // Half the traffic hammers vertex 0 to stress one lock.
        VertexId src = (i % 2 == 0) ? 0 : rng.NextBounded(64);
        VertexId dst = rng.NextBounded(64);
        store.InsertEdge(Edge{src, dst, static_cast<Weight>(t + 1)});
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(store.NumEdges(), uint64_t{kThreads} * kPerThread);
  // Out-edge totals must equal in-edge totals (transpose consistency).
  uint64_t out_total = 0;
  uint64_t in_total = 0;
  for (VertexId v = 0; v < 64; ++v) {
    store.ForEachOut(v, [&](VertexId, Weight, uint64_t c) { out_total += c; });
    store.ForEachIn(v, [&](VertexId, Weight, uint64_t c) { in_total += c; });
  }
  EXPECT_EQ(out_total, uint64_t{kThreads} * kPerThread);
  EXPECT_EQ(in_total, uint64_t{kThreads} * kPerThread);
}

TEST(GraphStore, ConcurrentMixedInsertDelete) {
  DefaultGraphStore store(16);
  // Pre-populate a dense small graph.
  for (VertexId s = 0; s < 16; ++s) {
    for (VertexId d = 0; d < 16; ++d) {
      if (s != d) {
        store.InsertEdge(Edge{s, d, 1});
        store.InsertEdge(Edge{s, d, 1});
      }
    }
  }
  uint64_t initial = store.NumEdges();
  std::vector<std::thread> threads;
  std::atomic<int64_t> delta{0};
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(100 + t);
      for (int i = 0; i < 5000; ++i) {
        VertexId s = rng.NextBounded(16);
        VertexId d = rng.NextBounded(16);
        if (s == d) continue;
        if (rng.NextBool(0.5)) {
          store.InsertEdge(Edge{s, d, 1});
          delta.fetch_add(1);
        } else if (store.DeleteEdge(Edge{s, d, 1}) !=
                   DeleteResult::kNotFound) {
          delta.fetch_sub(1);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(store.NumEdges(),
            initial + static_cast<uint64_t>(delta.load() + 0));
}

TEST(GraphStore, MemoryReporting) {
  DefaultGraphStore store(100);
  size_t before = store.MemoryBytes();
  for (uint64_t i = 0; i < 1000; ++i) {
    store.InsertEdge(Edge{i % 100, (i + 1) % 100, i});
  }
  EXPECT_GT(store.MemoryBytes(), before);
}

TEST(GraphStore, NoTransposeOption) {
  StoreOptions opt;
  opt.keep_transpose = false;
  DefaultGraphStore store(4, opt);
  store.InsertEdge(Edge{0, 1, 1});
  EXPECT_EQ(store.OutDegree(0), 1u);
  EXPECT_EQ(store.InDegree(1), 0u);
  EXPECT_EQ(store.DeleteEdge(Edge{0, 1, 1}), DeleteResult::kRemoved);
}

TEST(GraphStore, IndexThresholdOption) {
  StoreOptions opt;
  opt.index_threshold = 4;
  DefaultGraphStore store(8, opt);
  for (uint64_t i = 0; i < 100; ++i) store.InsertEdge(Edge{0, i % 8, i});
  // With threshold 4 the hub's adjacency must have built an index; verify by
  // point lookups staying correct (the index path).
  EXPECT_EQ(store.EdgeCount(0, EdgeKey{1, 1}), 1u);
  EXPECT_EQ(store.EdgeCount(0, EdgeKey{1, 2}), 0u);
}

}  // namespace
}  // namespace risgraph
