// The subscription INDEX (src/subscribe/subscription_index.h) and the
// sharded registry built on it: posting-list bookkeeping under churn
// (counter-asserted — no stale entries), indexed-vs-scan matcher
// equivalence at the registry level, and the end-to-end contract the PR
// hangs on — randomized subscribe/unsubscribe churn interleaved with
// ingest produces notification streams bit-identical to the scan baseline
// at ingest/store shards {1,2,4} and over both transports.

#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <random>
#include <string>
#include <vector>

#include "core/algorithm_api.h"
#include "ingest/epoch_pipeline.h"
#include "net/rpc_client.h"
#include "net/rpc_server.h"
#include "parallel/thread_pool.h"
#include "runtime/client.h"
#include "runtime/risgraph.h"
#include "runtime/service.h"
#include "shard/sharded_store.h"
#include "subscribe/publisher.h"
#include "subscribe/registry.h"
#include "subscribe/subscription_index.h"
#include "workload/rmat.h"
#include "workload/update_stream.h"

namespace risgraph {
namespace {

//===--- Index structures ----------------------------------------------------//

TEST(VertexPostingIndexTest, AddRemoveMatchAndEntryCount) {
  VertexPostingIndex index;
  index.Add(5, SubscriptionPosting{1, 0, 0, NotifyPredicate::kAnyChange});
  index.Add(5, SubscriptionPosting{2, 0, 3, NotifyPredicate::kValueAtMost});
  index.Add(9, SubscriptionPosting{1, 0, 0, NotifyPredicate::kAnyChange});
  index.Add(9, SubscriptionPosting{3, 1, 0, NotifyPredicate::kAnyChange});
  EXPECT_EQ(index.entries(), 4u);

  std::vector<CommittedChange> changes = {
      {0, 1, 5, 10, 2},   // passes sub 1 (any) and sub 2 (<= 3)
      {0, 1, 9, 0, 7},    // passes sub 1; sub 3 is algo 1, filtered out
      {0, 1, 42, 0, 1},   // unindexed vertex: zero candidates
  };
  std::vector<MatchHit> hits;
  uint64_t candidates =
      index.MatchInto(changes, [](VertexId) { return true; }, &hits);
  EXPECT_EQ(candidates, 4u);  // 2 postings at v5 + 2 at v9, none at v42
  std::sort(hits.begin(), hits.end());
  ASSERT_EQ(hits.size(), 3u);
  EXPECT_EQ(hits[0].change, 0u);
  EXPECT_EQ(hits[0].id, 1u);
  EXPECT_EQ(hits[1].change, 0u);
  EXPECT_EQ(hits[1].id, 2u);
  EXPECT_EQ(hits[2].change, 1u);
  EXPECT_EQ(hits[2].id, 1u);

  // The ownership pre-filter drops non-owned vertices before probing.
  hits.clear();
  candidates =
      index.MatchInto(changes, [](VertexId v) { return v == 9; }, &hits);
  EXPECT_EQ(candidates, 2u);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].id, 1u);

  // Remove is by (vertex, id); absent removals are no-ops.
  index.Remove(5, 2);
  index.Remove(5, 2);
  index.Remove(77, 1);
  EXPECT_EQ(index.entries(), 3u);
  hits.clear();
  index.MatchInto(changes, [](VertexId) { return true; }, &hits);
  for (const MatchHit& h : hits) EXPECT_NE(h.id, 2u);
}

TEST(WatchAllLaneTest, PerAlgorithmLanesAndPredicates) {
  WatchAllLane lane;
  lane.Add(SubscriptionPosting{1, 0, 0, NotifyPredicate::kAnyChange});
  lane.Add(SubscriptionPosting{2, 1, 5, NotifyPredicate::kValueAtLeast});
  EXPECT_EQ(lane.entries(), 2u);

  std::vector<CommittedChange> changes = {
      {0, 1, 3, 0, 1},  // algo 0: sub 1 only
      {1, 1, 4, 0, 9},  // algo 1, value 9 >= 5: sub 2
      {1, 1, 5, 0, 2},  // algo 1, value 2 < 5: candidate but no hit
      {7, 1, 6, 0, 1},  // no lane for algo 7
  };
  std::vector<MatchHit> hits;
  uint64_t candidates = lane.MatchInto(changes, &hits);
  EXPECT_EQ(candidates, 3u);
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_EQ(hits[0].id, 1u);
  EXPECT_EQ(hits[1].id, 2u);

  lane.Remove(1, 2);
  lane.Remove(1, 2);   // idempotent
  lane.Remove(9, 1);   // unknown algo: no-op
  EXPECT_EQ(lane.entries(), 1u);
}

//===--- Registry: indexed vs scan equivalence, posting consistency ----------//

std::vector<CommittedChange> RandomBatch(std::mt19937& rng, uint64_t algos,
                                         uint64_t vertices, size_t n) {
  std::vector<CommittedChange> batch;
  batch.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    batch.push_back(CommittedChange{rng() % algos, 1, rng() % vertices,
                                    rng() % 16, rng() % 16});
  }
  return batch;
}

/// Matches one batch through the public indexed surface exactly the way
/// ChangePublisher does: every shard, the watch-all lane, one Deliver.
void PublishIndexed(SubscriptionRegistry& reg,
                    std::span<const CommittedChange> batch) {
  std::vector<MatchHit> hits;
  for (uint32_t s = 0; s < reg.num_match_shards(); ++s) {
    reg.MatchShard(s, batch, &hits);
  }
  reg.MatchWatchAll(batch, &hits);
  reg.Deliver(batch, &hits);
}

SubscriptionFilter RandomFilter(std::mt19937& rng, uint64_t algos,
                                uint64_t vertices) {
  if (rng() % 4 == 0) {
    return SubscriptionFilter::WatchAll(
        rng() % algos, static_cast<NotifyPredicate>(rng() % 4), rng() % 8);
  }
  std::vector<VertexId> watched;
  size_t n = 1 + rng() % 6;
  for (size_t i = 0; i < n; ++i) watched.push_back(rng() % vertices);
  return SubscriptionFilter::WatchVertices(
      rng() % algos, std::move(watched),
      static_cast<NotifyPredicate>(rng() % 4), rng() % 8);
}

// Drive identical churn + batches through an indexed sharded registry and
// the scan oracle; every Poll drain must agree bit for bit, and the posting
// counters must account for exactly the live watch sets after every round.
TEST(RegistryIndexTest, ChurnEquivalenceAndPostingConsistency) {
  constexpr uint64_t kAlgos = 3;
  constexpr uint64_t kVertices = 256;

  for (uint32_t shards : {1u, 4u}) {
    SCOPED_TRACE("match_shards=" + std::to_string(shards));
    SubscriptionRegistry::Options indexed_opt;
    indexed_opt.match_shards = shards;
    SubscriptionRegistry indexed(indexed_opt);
    SubscriptionRegistry::Options scan_opt;
    scan_opt.indexed_matching = false;
    SubscriptionRegistry scan(scan_opt);

    auto* isub = indexed.OpenSubscriber();
    auto* ssub = scan.OpenSubscriber();

    std::mt19937 rng(42 + shards);
    std::vector<uint64_t> live;        // ids live in BOTH registries
    uint64_t expected_postings = 0;    // live watch-set cardinality
    std::vector<Notification> igot, sgot;

    for (int round = 0; round < 60; ++round) {
      // Subscribe a few (same filter, both registries; ids stay in step
      // because both allocate sequentially from 1).
      size_t subs = rng() % 3;
      for (size_t i = 0; i < subs; ++i) {
        SubscriptionFilter f = RandomFilter(rng, kAlgos, kVertices);
        SubscriptionFilter copy = f;
        copy.Normalize();
        uint64_t id = indexed.Subscribe(isub, f);
        ASSERT_EQ(scan.Subscribe(ssub, std::move(f)), id);
        live.push_back(id);
        expected_postings +=
            copy.watch_all ? 1 : copy.WatchedVertices().size();
      }
      // Unsubscribe a random live one.
      if (!live.empty() && rng() % 3 == 0) {
        size_t pick = rng() % live.size();
        uint64_t id = live[pick];
        live.erase(live.begin() + pick);
        // Re-derive the filter's posting weight via the consistency counter
        // delta instead of tracking filters: assert after the pair of
        // removals below.
        uint64_t before = indexed.IndexEntriesForTest();
        ASSERT_TRUE(indexed.Unsubscribe(isub, id));
        ASSERT_TRUE(scan.Unsubscribe(ssub, id));
        uint64_t removed = before - indexed.IndexEntriesForTest();
        ASSERT_GE(removed, 1u);
        expected_postings -= removed;
      }
      ASSERT_EQ(indexed.IndexEntriesForTest(), expected_postings);
      ASSERT_EQ(indexed.NumSubscriptions(), live.size());
      ASSERT_EQ(scan.NumSubscriptions(), live.size());

      std::vector<CommittedChange> batch =
          RandomBatch(rng, kAlgos, kVertices, 1 + rng() % 40);
      PublishIndexed(indexed, batch);
      scan.PublishScan(batch);

      igot.clear();
      sgot.clear();
      indexed.Poll(isub, &igot, SIZE_MAX);
      scan.Poll(ssub, &sgot, SIZE_MAX);
      ASSERT_EQ(igot, sgot) << "diverged at round " << round;
    }
    ASSERT_EQ(indexed.matched(), scan.matched());
    // The index's whole point: examined pairs stay below the scan
    // equivalent (every batch also touched vertices nobody watches).
    EXPECT_LT(indexed.candidate_pairs(), indexed.scan_equivalent_pairs());
    EXPECT_EQ(scan.candidate_pairs(), scan.scan_equivalent_pairs());

    // CloseSubscriber drops every remaining posting.
    indexed.CloseSubscriber(isub);
    EXPECT_EQ(indexed.IndexEntriesForTest(), 0u);
    EXPECT_EQ(indexed.NumSubscriptions(), 0u);
    scan.CloseSubscriber(ssub);
  }
}

// A hit whose subscription disappears between match and delivery is dropped,
// not delivered to a dangling entry.
TEST(RegistryIndexTest, StaleHitsDroppedAtDelivery) {
  SubscriptionRegistry reg;
  auto* sub = reg.OpenSubscriber();
  uint64_t id =
      reg.Subscribe(sub, SubscriptionFilter::WatchVertices(0, {7}));
  std::vector<CommittedChange> batch = {{0, 1, 7, 0, 1}};
  std::vector<MatchHit> hits;
  reg.MatchShard(0, batch, &hits);
  ASSERT_EQ(hits.size(), 1u);
  ASSERT_TRUE(reg.Unsubscribe(sub, id));  // between match and delivery
  reg.Deliver(batch, &hits);
  std::vector<Notification> got;
  EXPECT_EQ(reg.Poll(sub, &got, SIZE_MAX), 0u);
  EXPECT_EQ(reg.matched(), 0u);
  reg.CloseSubscriber(sub);
}

//===--- End-to-end churn invariance -----------------------------------------//

/// Drives the workload in rounds, churning subscriptions at quiesced points
/// between rounds (flush + matcher drain), appending each round's drained
/// notifications. The churn schedule is derived from `seed` only, so every
/// configuration replays the identical subscribe/unsubscribe sequence —
/// the streams must then be bit-identical regardless of matcher (indexed or
/// scan), registry sharding, store sharding, ingest sharding, or transport.
struct ChurnOutcome {
  std::vector<Notification> stream;
  VersionId version = 0;
};

class ChurnSchedule {
 public:
  explicit ChurnSchedule(uint32_t seed, uint64_t vertices)
      : rng_(seed), vertices_(vertices) {}

  /// Applies round `r`'s churn through any IClient. `live` carries the
  /// subscription ids this schedule opened and still holds.
  void Apply(IClient& client, size_t bfs, size_t sssp,
             std::vector<uint64_t>* live) {
    size_t subs = 1 + rng_() % 2;
    for (size_t i = 0; i < subs; ++i) {
      uint64_t algo = rng_() % 2 == 0 ? bfs : sssp;
      uint64_t id;
      if (rng_() % 4 == 0) {
        id = client.Subscribe(SubscriptionFilter::WatchAll(
            algo, static_cast<NotifyPredicate>(rng_() % 4), rng_() % 6));
      } else {
        std::vector<VertexId> watched;
        size_t n = 1 + rng_() % 8;
        for (size_t j = 0; j < n; ++j) watched.push_back(rng_() % vertices_);
        id = client.Subscribe(SubscriptionFilter::WatchVertices(
            algo, std::move(watched),
            static_cast<NotifyPredicate>(rng_() % 4), rng_() % 6));
      }
      ASSERT_NE(id, 0u);
      live->push_back(id);
    }
    if (live->size() > 2 && rng_() % 2 == 0) {
      size_t pick = rng_() % live->size();
      ASSERT_TRUE(client.Unsubscribe((*live)[pick]));
      live->erase(live->begin() + pick);
    }
  }

 private:
  std::mt19937 rng_;
  uint64_t vertices_;
};

constexpr uint32_t kChurnSeed = 17;
constexpr int kChurnRounds = 6;

template <typename Store>
ChurnOutcome DriveChurnInProcess(const StreamWorkload& wl,
                                 uint32_t store_shards, size_t ingest_shards,
                                 bool indexed) {
  RisGraphOptions opt;
  opt.store.partition.num_shards = store_shards;
  RisGraph<Store> sys(wl.num_vertices, opt);
  size_t bfs = sys.template AddAlgorithm<Bfs>(0);
  size_t sssp = sys.template AddAlgorithm<Sssp>(0);
  sys.LoadGraph(wl.preload);
  sys.InitializeResults();

  SubscriptionRegistry::Options reg;
  reg.queue_capacity = 1 << 20;  // determinism run: no coalescing
  reg.indexed_matching = indexed;
  SubscriptionRegistry registry(reg);
  ChangePublisher publisher(registry);
  ServiceOptions so;
  so.ingest_shards = ingest_shards;
  EpochPipeline<Store> pipeline(sys, so);
  pipeline.AttachPublisher(&publisher);

  ChurnOutcome out;
  {
    SessionClient<Store> client(sys, pipeline);
    pipeline.Start();
    ChurnSchedule churn(kChurnSeed, wl.num_vertices);
    std::vector<uint64_t> live;
    size_t chunk = (wl.updates.size() + kChurnRounds - 1) / kChurnRounds;
    for (int r = 0; r < kChurnRounds; ++r) {
      churn.Apply(client, bfs, sssp, &live);
      size_t begin = r * chunk;
      size_t end = std::min(wl.updates.size(), begin + chunk);
      for (size_t i = begin; i < end; ++i) {
        EXPECT_EQ(client.SubmitAsync(wl.updates[i]), ClientStatus::kOk);
      }
      EXPECT_TRUE(client.Flush().ok);
      // Quiesce before the next churn: the live set may only change on
      // fully-delivered batch boundaries, or the stream would depend on
      // where epochs split.
      publisher.WaitIdle();
      client.PollNotifications(&out.stream);
    }
    pipeline.Stop();
    publisher.WaitIdle();
    client.PollNotifications(&out.stream);
    out.version = sys.GetCurrentVersion();
  }
  return out;
}

ChurnOutcome DriveChurnOverRpc(const StreamWorkload& wl, size_t ingest_shards,
                               bool indexed) {
  RisGraph<> sys(wl.num_vertices);
  size_t bfs = sys.AddAlgorithm<Bfs>(0);
  size_t sssp = sys.AddAlgorithm<Sssp>(0);
  sys.LoadGraph(wl.preload);
  sys.InitializeResults();

  SubscriptionRegistry::Options reg;
  reg.queue_capacity = 1 << 20;
  reg.indexed_matching = indexed;
  SubscriptionRegistry registry(reg);
  ChangePublisher publisher(registry);
  ServiceOptions so;
  so.ingest_shards = ingest_shards;
  RisGraphService<> service(sys, so);
  service.AttachPublisher(&publisher);
  std::string path = "/tmp/risgraph_sub_churn_" + std::to_string(::getpid()) +
                     "_" + std::to_string(ingest_shards) +
                     (indexed ? "_i" : "_s") + ".sock";
  RpcServer server(sys, service, path);
  EXPECT_TRUE(server.Start(4));
  service.Start();

  ChurnOutcome out;
  {
    RpcClient client(/*window=*/256);
    EXPECT_TRUE(client.Connect(path));
    ChurnSchedule churn(kChurnSeed, wl.num_vertices);
    std::vector<uint64_t> live;
    size_t chunk = (wl.updates.size() + kChurnRounds - 1) / kChurnRounds;
    for (int r = 0; r < kChurnRounds; ++r) {
      churn.Apply(client, bfs, sssp, &live);
      size_t begin = r * chunk;
      size_t end = std::min(wl.updates.size(), begin + chunk);
      for (size_t i = begin; i < end; ++i) {
        EXPECT_EQ(client.SubmitAsync(wl.updates[i]), ClientStatus::kOk);
      }
      EXPECT_TRUE(client.Flush().ok);
      publisher.WaitIdle();
      // Remote delivery is asynchronous: drain until quiet (bounded by
      // push latency once the matcher is idle) BEFORE the next churn may
      // unsubscribe — a racing unsubscribe drops in-flight pushes.
      while (client.WaitNotification(200000)) {
        client.PollNotifications(&out.stream);
      }
    }
    out.version = sys.GetCurrentVersion();
    client.Close();
  }
  server.Stop();
  service.Stop();
  return out;
}

TEST(SubscriptionIndexInvarianceTest, ChurnStreamsBitIdenticalToScanBaseline) {
  // 1-thread global pool: pool interleaving is the engine's only
  // nondeterminism; the publisher's own match pool needs no pinning — its
  // fan-out is order-independent by construction (Deliver sorts).
  ThreadPool::ResetGlobal(1);

  RmatParams rmat;
  rmat.scale = 7;
  rmat.num_edges = 900;
  rmat.max_weight = 4;
  rmat.seed = 11;
  StreamOptions so;
  so.preload_fraction = 0.5;
  so.insert_fraction = 0.6;
  so.seed = 23;
  StreamWorkload wl =
      BuildStream(uint64_t{1} << rmat.scale, GenerateRmat(rmat), so);

  // The oracle: scan matcher, unsharded everything.
  ChurnOutcome base =
      DriveChurnInProcess<DefaultGraphStore>(wl, 1, 1, /*indexed=*/false);
  ASSERT_FALSE(base.stream.empty());
  ASSERT_GT(base.version, 0u);

  // Indexed matcher across ingest-ring counts on the unsharded store.
  for (size_t ingest_shards : {1u, 2u, 4u}) {
    SCOPED_TRACE("indexed ingest_shards=" + std::to_string(ingest_shards));
    ChurnOutcome got = DriveChurnInProcess<DefaultGraphStore>(
        wl, 1, ingest_shards, /*indexed=*/true);
    EXPECT_EQ(got.version, base.version);
    ASSERT_EQ(got.stream, base.stream);
  }
  // Sharded store => sharded registry (ownership wired through
  // AttachPublisher): the parallel fan-out must still merge to the same
  // streams.
  for (uint32_t shards : {1u, 2u, 4u}) {
    SCOPED_TRACE("indexed store_shards=" + std::to_string(shards));
    ChurnOutcome got = DriveChurnInProcess<ShardedGraphStore<>>(
        wl, shards, shards, /*indexed=*/true);
    EXPECT_EQ(got.version, base.version);
    ASSERT_EQ(got.stream, base.stream);
  }
  // RPC transport, indexed matcher.
  for (size_t ingest_shards : {1u, 4u}) {
    SCOPED_TRACE("rpc ingest_shards=" + std::to_string(ingest_shards));
    ChurnOutcome got = DriveChurnOverRpc(wl, ingest_shards, /*indexed=*/true);
    EXPECT_EQ(got.version, base.version);
    ASSERT_EQ(got.stream, base.stream);
  }

  ThreadPool::ResetGlobal(0);
}

}  // namespace
}  // namespace risgraph
