#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "common/random.h"
#include "core/algorithm_api.h"
#include "core/reference.h"
#include "runtime/risgraph.h"
#include "storage/graph_store.h"
#include "wal/checkpoint.h"
#include "wal/wal.h"

namespace risgraph {
namespace {

class CheckpointTest : public ::testing::Test {
 protected:
  void SetUp() override {
    base_ = ::testing::TempDir() + "risgraph_ckpt_" +
            std::to_string(reinterpret_cast<uintptr_t>(this));
    ckpt_ = base_ + ".ckpt";
    wal_ = base_ + ".wal";
    std::remove(ckpt_.c_str());
    std::remove(wal_.c_str());
  }
  void TearDown() override {
    std::remove(ckpt_.c_str());
    std::remove(wal_.c_str());
  }
  std::string base_, ckpt_, wal_;
};

TEST_F(CheckpointTest, RoundtripPreservesEdgesAndDuplicates) {
  DefaultGraphStore store(64);
  Rng rng(5);
  for (int i = 0; i < 2000; ++i) {
    store.InsertEdge(Edge{rng.NextBounded(64), rng.NextBounded(64),
                          rng.NextBounded(4)});
  }
  ASSERT_TRUE(WriteCheckpoint(store, /*last_lsn=*/123, ckpt_));

  DefaultGraphStore loaded(0);
  CheckpointInfo info = LoadCheckpoint(loaded, ckpt_);
  ASSERT_TRUE(info.ok);
  EXPECT_EQ(info.last_lsn, 123u);
  EXPECT_EQ(info.num_vertices, 64u);
  EXPECT_EQ(loaded.NumEdges(), store.NumEdges());
  for (VertexId v = 0; v < 64; ++v) {
    ASSERT_EQ(loaded.OutDegree(v), store.OutDegree(v)) << v;
    store.ForEachOut(v, [&](VertexId dst, Weight w, uint64_t count) {
      EXPECT_EQ(loaded.EdgeCount(v, EdgeKey{dst, w}), count);
    });
    ASSERT_EQ(loaded.InDegree(v), store.InDegree(v)) << v;  // transpose too
  }
}

TEST_F(CheckpointTest, CorruptionIsDetected) {
  DefaultGraphStore store(8);
  store.InsertEdge(Edge{1, 2, 3});
  store.InsertEdge(Edge{2, 3, 4});
  ASSERT_TRUE(WriteCheckpoint(store, 7, ckpt_));
  // Flip one payload byte.
  std::FILE* f = std::fopen(ckpt_.c_str(), "rb+");
  std::fseek(f, 48, SEEK_SET);
  int c = std::fgetc(f);
  std::fseek(f, 48, SEEK_SET);
  std::fputc(c ^ 0x40, f);
  std::fclose(f);
  DefaultGraphStore loaded(0);
  EXPECT_FALSE(LoadCheckpoint(loaded, ckpt_).ok);
}

TEST_F(CheckpointTest, MissingFileFailsCleanly) {
  DefaultGraphStore loaded(0);
  EXPECT_FALSE(LoadCheckpoint(loaded, "/nonexistent/x.ckpt").ok);
}

// Full recovery flow: checkpoint mid-stream, keep appending to the WAL,
// crash, recover = checkpoint + WAL tail with LSN filtering.
TEST_F(CheckpointTest, CheckpointPlusWalTailRecovery) {
  std::vector<uint64_t> expected;
  uint64_t ckpt_lsn = 0;
  {
    RisGraphOptions opt;
    opt.wal_path = wal_;
    RisGraph<> sys(16, opt);
    size_t bfs = sys.AddAlgorithm<Bfs>(0);
    sys.InitializeResults();
    sys.InsEdge(0, 1);
    sys.InsEdge(1, 2);
    sys.InsEdge(2, 3);
    // Checkpoint here. The next WAL LSN tells the tail where to start.
    sys.WalFlush();
    ckpt_lsn = 3;  // three records appended so far
    ASSERT_TRUE(WriteCheckpoint(sys.store(), ckpt_lsn, ckpt_));
    // More updates after the checkpoint.
    sys.DelEdge(1, 2);
    sys.InsEdge(0, 4);
    for (VertexId v = 0; v < 16; ++v) expected.push_back(sys.GetValue(bfs, v));
  }

  // Recover: load snapshot, then replay only records with lsn >= ckpt_lsn.
  RisGraph<> recovered(0);
  CheckpointInfo info = LoadCheckpoint(recovered.store(), ckpt_);
  ASSERT_TRUE(info.ok);
  size_t bfs = recovered.AddAlgorithm<Bfs>(0);
  recovered.InitializeResults();
  uint64_t replayed = 0;
  WriteAheadLog::Replay(wal_, [&](const WalRecord& r) {
    if (r.lsn < info.last_lsn) return;  // already inside the checkpoint
    replayed++;
    if (r.update.kind == UpdateKind::kInsertEdge) {
      recovered.InsEdge(r.update.edge.src, r.update.edge.dst,
                        r.update.edge.weight);
    } else if (r.update.kind == UpdateKind::kDeleteEdge) {
      recovered.DelEdge(r.update.edge.src, r.update.edge.dst,
                        r.update.edge.weight);
    }
  });
  EXPECT_EQ(replayed, 2u);
  for (VertexId v = 0; v < 16; ++v) {
    EXPECT_EQ(recovered.GetValue(bfs, v), expected[v]) << v;
  }
  // And the recovered results equal a recompute on the recovered store.
  auto ref = ReferenceCompute<Bfs>(recovered.store(), 0);
  for (VertexId v = 0; v < 16; ++v) {
    EXPECT_EQ(recovered.GetValue(bfs, v), ref[v]) << v;
  }
}

TEST_F(CheckpointTest, EmptyStoreCheckpoint) {
  DefaultGraphStore store(4);
  ASSERT_TRUE(WriteCheckpoint(store, 0, ckpt_));
  DefaultGraphStore loaded(0);
  CheckpointInfo info = LoadCheckpoint(loaded, ckpt_);
  EXPECT_TRUE(info.ok);
  EXPECT_EQ(loaded.NumVertices(), 4u);
  EXPECT_EQ(loaded.NumEdges(), 0u);
}

}  // namespace
}  // namespace risgraph
