// The two-stage epoch packer (ingest/batch_former.h):
//   * FlatMap/FlatSet open-addressing tables — probe-collision handling,
//     O(1) generation clears, full-key comparison;
//   * IngestShard::TryPopBulk / ShardedIngestQueue::DrainInto — bulk drains
//     preserve ring FIFO through wraparound;
//   * dup-delta regression: two distinct edges engineered to collide under
//     the old 64-bit mixed DeltaKey must NOT share a duplicate-count delta
//     (the old table misclassified the deletion of a tree edge as safe);
//   * classification equivalence: randomized multi-session streams packed by
//     the sequential packer and the pool-fanned parallel packer produce
//     identical verdicts, WAL order, and result versions, epoch by epoch;
//   * end-to-end: the full pipeline with parallel packing forced on matches
//     a serial per-session replay (FIFO effects, counters, recompute);
//   * steady-state packing performs zero heap allocations per epoch
//     (counting global allocator).

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <new>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/hash.h"
#include "common/random.h"
#include "core/algorithm_api.h"
#include "core/reference.h"
#include "ingest/batch_former.h"
#include "ingest/ingest_queue.h"
#include "parallel/thread_pool.h"
#include "runtime/risgraph.h"
#include "runtime/service.h"

// --- Counting global allocator (for the zero-allocation packing test). ----
static std::atomic<uint64_t> g_news{0};

void* operator new(std::size_t n) {
  g_news.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) {
  g_news.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n)) return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace risgraph {
namespace {

//===--------------------------------------------------------------------===//
// Flat hash tables
//===--------------------------------------------------------------------===//

struct WorstHash {
  uint64_t operator()(uint64_t) const { return 7; }  // everything collides
};

TEST(FlatMap, HandlesFullProbeCollisions) {
  FlatMap<uint64_t, int, WorstHash> map;
  for (uint64_t k = 0; k < 100; ++k) map[k] = static_cast<int>(k * 3);
  EXPECT_EQ(map.size(), 100u);
  for (uint64_t k = 0; k < 100; ++k) {
    int* v = map.Find(k);
    ASSERT_NE(v, nullptr) << k;
    EXPECT_EQ(*v, static_cast<int>(k * 3));
  }
  EXPECT_EQ(map.Find(100), nullptr);
}

TEST(FlatMap, GenerationClearDropsEverything) {
  FlatMap<uint64_t, int, WorstHash> map;
  for (uint64_t k = 0; k < 50; ++k) map[k] = 1;
  map.Clear();
  EXPECT_EQ(map.size(), 0u);
  for (uint64_t k = 0; k < 50; ++k) EXPECT_EQ(map.Find(k), nullptr) << k;
  // Reuse after clear: stale slots from the previous generation must not
  // shadow fresh inserts.
  map[7] = 42;
  ASSERT_NE(map.Find(7), nullptr);
  EXPECT_EQ(*map.Find(7), 42);
  EXPECT_EQ(map.size(), 1u);
}

struct U64Hash {
  uint64_t operator()(uint64_t k) const { return Murmur3Fmix64(k); }
};

TEST(FlatMap, MatchesUnorderedMapUnderRandomOps) {
  FlatMap<uint64_t, int64_t, U64Hash> map;
  std::unordered_map<uint64_t, int64_t> ref;
  Rng rng(99);
  for (int round = 0; round < 4; ++round) {
    for (int i = 0; i < 3000; ++i) {
      uint64_t key = rng.NextBounded(700);  // heavy key reuse
      if (rng.NextBool(0.5)) {
        map[key]++;
        ref[key]++;
      } else {
        int64_t* v = map.Find(key);
        auto it = ref.find(key);
        ASSERT_EQ(v != nullptr, it != ref.end()) << key;
        if (v != nullptr) ASSERT_EQ(*v, it->second) << key;
      }
    }
    ASSERT_EQ(map.size(), ref.size());
    map.Clear();
    ref.clear();
  }
}

TEST(FlatSet, InsertContainsClear) {
  FlatSet<uint64_t, U64Hash> set;
  EXPECT_TRUE(set.Insert(3));
  EXPECT_FALSE(set.Insert(3));
  EXPECT_TRUE(set.Contains(3));
  EXPECT_FALSE(set.Contains(4));
  set.Clear();
  EXPECT_FALSE(set.Contains(3));
  EXPECT_TRUE(set.Insert(3));
}

//===--------------------------------------------------------------------===//
// Bulk ring drains
//===--------------------------------------------------------------------===//

IngestItem Tagged(uint64_t seq) {
  IngestItem item;
  item.kind = IngestKind::kAsync;
  item.update = Update::InsertEdge(0, seq, 0);
  return item;
}

TEST(IngestRingBulk, PopsInFifoOrderThroughWraparound) {
  IngestShard ring(8);
  IngestItem buf[8];
  EXPECT_EQ(ring.TryPopBulk(buf, 8), 0u);

  uint64_t pushed = 0;
  uint64_t popped = 0;
  Rng rng(5);
  while (popped < 5000) {
    uint64_t burst = 1 + rng.NextBounded(8);
    for (uint64_t i = 0; i < burst; ++i) {
      if (!ring.TryPush(Tagged(pushed))) break;
      pushed++;
    }
    size_t want = 1 + rng.NextBounded(8);
    size_t got = ring.TryPopBulk(buf, want);
    ASSERT_LE(got, want);
    for (size_t i = 0; i < got; ++i) {
      ASSERT_EQ(buf[i].update.edge.dst, popped);  // strict FIFO
      popped++;
    }
  }
  while (size_t got = ring.TryPopBulk(buf, 8)) {
    for (size_t i = 0; i < got; ++i) {
      ASSERT_EQ(buf[i].update.edge.dst, popped);
      popped++;
    }
  }
  EXPECT_EQ(pushed, popped);
}

TEST(IngestRingBulk, BulkAndSinglePopsInterop) {
  IngestShard ring(8);
  for (uint64_t i = 0; i < 6; ++i) ASSERT_TRUE(ring.TryPush(Tagged(i)));
  IngestItem buf[4];
  ASSERT_EQ(ring.TryPopBulk(buf, 3), 3u);
  EXPECT_EQ(buf[2].update.edge.dst, 2u);
  IngestItem one;
  ASSERT_TRUE(ring.TryPop(&one));
  EXPECT_EQ(one.update.edge.dst, 3u);
  ASSERT_EQ(ring.TryPopBulk(buf, 4), 2u);
  EXPECT_EQ(buf[0].update.edge.dst, 4u);
  EXPECT_EQ(buf[1].update.edge.dst, 5u);
  // Freed slots are reusable.
  for (uint64_t i = 0; i < 8; ++i) ASSERT_TRUE(ring.TryPush(Tagged(10 + i)));
  EXPECT_FALSE(ring.TryPush(Tagged(99)));
}

TEST(IngestRingBulk, DrainIntoCollectsAllShards) {
  ShardedIngestQueue queue(3, 8);
  for (uint64_t s = 0; s < 3; ++s) {
    for (uint64_t i = 0; i < 4; ++i) {
      ASSERT_TRUE(queue.shard(s).TryPush(Tagged(s * 100 + i)));
    }
  }
  std::vector<IngestItem> out;
  EXPECT_EQ(queue.DrainInto(out), 12u);
  EXPECT_EQ(out.size(), 12u);
  // Per-shard FIFO survives (shards appear as contiguous runs).
  std::vector<uint64_t> next{0, 0, 0};
  for (const IngestItem& item : out) {
    uint64_t shard = item.update.edge.dst / 100;
    ASSERT_EQ(item.update.edge.dst % 100, next[shard]);
    next[shard]++;
  }
  EXPECT_TRUE(queue.Empty());
}

//===--------------------------------------------------------------------===//
// Packing harness: drives a BatchFormer the way the epoch pipeline does,
// but deterministically on the test thread (pushes happen before packing).
//===--------------------------------------------------------------------===//

struct VerdictRec {
  size_t session = 0;
  Update update;
  bool safe = false;

  friend bool operator==(const VerdictRec&, const VerdictRec&) = default;
};

class PackHarness {
 public:
  PackHarness(RisGraph<>& sys, size_t num_sessions, size_t shards,
              size_t shard_capacity, size_t parallel_threshold,
              ThreadPool* pool)
      : sys_(sys),
        queue_(shards, shard_capacity),
        former_(sys, queue_, pool, {parallel_threshold}),
        num_sessions_(num_sessions),
        sessions_(new Session[num_sessions]) {}

  bool PushAsync(size_t session, const Update& u) {
    return queue_.shard(session % queue_.num_shards())
        .TryPush(IngestItem{IngestKind::kAsync, &sessions_[session], u});
  }

  /// One epoch: pack everything claimable, then execute safe groups followed
  /// by the unsafe lane (the pipeline's order). Returns items claimed.
  uint64_t RunEpoch(std::vector<VerdictRec>* log,
                    std::vector<Update>* wal_out = nullptr) {
    uint64_t found = RunEpochPackOnly();
    if (wal_out != nullptr) {
      wal_out->insert(wal_out->end(), wal_.begin(), wal_.end());
    }
    ExecutePending(log);
    return found;
  }

  /// Just the pack path (BeginEpoch + PackOnce) — the region the
  /// zero-allocation test measures.
  uint64_t RunEpochPackOnly() {
    former_.BeginEpoch();
    wal_.clear();
    return former_.PackOnce(wal_);
  }

  void ExecutePending(std::vector<VerdictRec>* log = nullptr) {
    for (auto& g : former_.async_safe()) {
      for (const Update& u : g.updates) {
        if (log != nullptr) log->push_back({Index(g.session), u, true});
        sys_.ApplySafeToStore(u);
      }
    }
    auto& unsafe_queue = former_.unsafe_queue();
    while (!unsafe_queue.empty()) {
      auto c = unsafe_queue.front();
      unsafe_queue.pop_front();
      if (log != nullptr) {
        log->push_back({Index(c.session), c.async_update, false});
      }
      sys_.ApplyUnsafe(c.async_update);
    }
  }

  bool HasDeferred() const { return former_.HasDeferred(); }

 private:
  size_t Index(Session* s) const { return static_cast<size_t>(s - &sessions_[0]); }

  RisGraph<>& sys_;
  ShardedIngestQueue queue_;
  BatchFormer<DefaultGraphStore> former_;
  std::vector<Update> wal_;
  size_t num_sessions_;
  std::unique_ptr<Session[]> sessions_;
};

RisGraphOptions NoHistory() {
  RisGraphOptions o;
  o.keep_history = false;
  return o;
}

//===--------------------------------------------------------------------===//
// Dup-delta collision regression
//===--------------------------------------------------------------------===//

// The pre-flat-table delta key: a 64-bit mix of (src, dst, weight) used
// directly as the map key, with no collision handling. Reproduced here to
// engineer a colliding edge pair.
uint64_t OldDeltaKey(const Edge& e) {
  uint64_t k = e.src * 0x9e3779b97f4a7c15ULL;
  k ^= e.dst + 0x9e3779b97f4a7c15ULL + (k << 6) + (k >> 2);
  k ^= e.weight + 0x517cc1b727220a95ULL + (k << 6) + (k >> 2);
  return k;
}

// The mix is invertible in the weight term: pick any (src, dst), then solve
// for the weight that lands on the target key.
Edge CollidingEdge(VertexId src, VertexId dst, const Edge& target) {
  uint64_t k = src * 0x9e3779b97f4a7c15ULL;
  k ^= dst + 0x9e3779b97f4a7c15ULL + (k << 6) + (k >> 2);
  uint64_t w =
      (k ^ OldDeltaKey(target)) - 0x517cc1b727220a95ULL - (k << 6) - (k >> 2);
  return Edge{src, dst, w};
}

TEST(IngestPack, DupDeltaKeysOnFullTupleNotHash) {
  // A safe insertion of `collider` lands a +1 delta in the epoch table; the
  // deletion of tree edge 0->1 (store count 1, BFS depends on it) must still
  // classify unsafe. Under the old hashed key the two edges shared a slot,
  // the deletion saw duplicate count 1+1=2, skipped the tree-edge check, and
  // was misclassified safe — deleting the edge from the store while BFS kept
  // stale results.
  const Edge tree{0, 1, 1};
  const Edge collider = CollidingEdge(2, 3, tree);
  ASSERT_EQ(OldDeltaKey(collider), OldDeltaKey(tree));
  ASSERT_NE(collider, tree);

  ThreadPool pool(4);
  for (size_t threshold : {~size_t{0}, size_t{1}}) {  // sequential, parallel
    RisGraph<> sys(4, NoHistory());
    size_t bfs = sys.AddAlgorithm<Bfs>(0);
    sys.LoadGraph({tree});
    sys.InitializeResults();

    PackHarness h(sys, /*sessions=*/1, /*shards=*/1, /*capacity=*/16,
                  threshold, &pool);
    ASSERT_TRUE(h.PushAsync(0, Update::InsertEdge(collider.src, collider.dst,
                                                  collider.weight)));
    ASSERT_TRUE(
        h.PushAsync(0, Update::DeleteEdge(tree.src, tree.dst, tree.weight)));

    std::vector<VerdictRec> log;
    EXPECT_EQ(h.RunEpoch(&log), 2u);
    ASSERT_EQ(log.size(), 2u);
    EXPECT_TRUE(log[0].safe) << "insert of the colliding edge is safe";
    EXPECT_FALSE(log[1].safe)
        << "deletion of the last duplicate of a tree edge must be unsafe "
           "even when another edge collides with it in the delta table";

    // The unsafe lane recomputed: results match a from-scratch reference.
    auto ref = ReferenceCompute<Bfs>(sys.store(), 0);
    for (VertexId v = 0; v < 4; ++v) {
      EXPECT_EQ(sys.GetValue(bfs, v), ref[v]) << v;
    }
  }
}

//===--------------------------------------------------------------------===//
// Sequential / parallel classification equivalence
//===--------------------------------------------------------------------===//

TEST(IngestPack, ParallelVerdictsMatchSequential) {
  constexpr size_t kSessions = 4;
  constexpr uint64_t kVertices = 16;
  constexpr Weight kMaxWeight = 2;
  constexpr int kEpochs = 40;
  constexpr int kPerEpoch = 200;

  ThreadPool pool(4);
  for (uint64_t seed : {11u, 22u, 33u}) {
    RisGraph<> seq_sys(kVertices, NoHistory());
    RisGraph<> par_sys(kVertices, NoHistory());
    for (auto* sys : {&seq_sys, &par_sys}) {
      sys->AddAlgorithm<Bfs>(0);
      sys->AddAlgorithm<Sssp>(0);
      sys->LoadGraph({{0, 1, 1}, {0, 2, 1}, {1, 3, 1}, {2, 4, 2}});
      sys->InitializeResults();
    }

    PackHarness seq(seq_sys, kSessions, 2, 1024, ~size_t{0}, &pool);
    PackHarness par(par_sys, kSessions, 2, 1024, /*threshold=*/1, &pool);

    Rng rng(seed);
    uint64_t safe_seen = 0;
    uint64_t unsafe_seen = 0;
    auto run_epoch_pair = [&] {
      std::vector<VerdictRec> seq_log, par_log;
      std::vector<Update> seq_wal, par_wal;
      uint64_t seq_found = seq.RunEpoch(&seq_log, &seq_wal);
      uint64_t par_found = par.RunEpoch(&par_log, &par_wal);
      ASSERT_EQ(seq_found, par_found);
      ASSERT_EQ(seq_wal, par_wal);  // claim order is part of the contract
      ASSERT_EQ(seq_log, par_log);
      ASSERT_EQ(seq_sys.GetCurrentVersion(), par_sys.GetCurrentVersion());
      for (const VerdictRec& r : seq_log) (r.safe ? safe_seen : unsafe_seen)++;
    };

    for (int e = 0; e < kEpochs; ++e) {
      for (int i = 0; i < kPerEpoch; ++i) {
        size_t c = rng.NextBounded(kSessions);
        VertexId a = rng.NextBounded(kVertices);
        VertexId b = rng.NextBounded(kVertices);
        Weight w = 1 + rng.NextBounded(kMaxWeight);
        // Small key space: same-key collisions within an epoch are common,
        // exercising the dup-delta reconciliation path. Occasionally insert
        // and immediately delete the same key through the same session.
        Update u = rng.NextBool(0.55) ? Update::InsertEdge(a, b, w)
                                      : Update::DeleteEdge(a, b, w);
        ASSERT_TRUE(seq.PushAsync(c, u));
        ASSERT_TRUE(par.PushAsync(c, u));
        if (u.kind == UpdateKind::kInsertEdge && rng.NextBool(0.3)) {
          Update del = Update::DeleteEdge(a, b, w);
          ASSERT_TRUE(seq.PushAsync(c, del));
          ASSERT_TRUE(par.PushAsync(c, del));
          ++i;
        }
      }
      run_epoch_pair();
    }
    // Drain parked (next-epoch) items.
    for (int e = 0; e < 64 && (seq.HasDeferred() || par.HasDeferred()); ++e) {
      run_epoch_pair();
    }
    ASSERT_FALSE(seq.HasDeferred());
    ASSERT_FALSE(par.HasDeferred());

    // The randomized mix must have exercised both classes.
    EXPECT_GT(safe_seen, 0u);
    EXPECT_GT(unsafe_seen, 0u);

    // Final stores and results are identical.
    for (VertexId a = 0; a < kVertices; ++a) {
      for (VertexId b = 0; b < kVertices; ++b) {
        for (Weight w = 1; w <= kMaxWeight; ++w) {
          ASSERT_EQ(seq_sys.store().EdgeCount(a, EdgeKey{b, w}),
                    par_sys.store().EdgeCount(a, EdgeKey{b, w}))
              << a << "->" << b << " w" << w;
        }
      }
    }
    for (size_t algo = 0; algo < 2; ++algo) {
      for (VertexId v = 0; v < kVertices; ++v) {
        ASSERT_EQ(seq_sys.GetValue(algo, v), par_sys.GetValue(algo, v))
            << "algo " << algo << " v " << v;
      }
    }
  }
}

//===--------------------------------------------------------------------===//
// End-to-end: full pipeline with parallel packing forced on
//===--------------------------------------------------------------------===//

TEST(IngestPack, PipelineWithParallelPackerMatchesSerialReplay) {
  constexpr uint64_t kBlock = 16;
  constexpr int kSessions = 6;  // 3 pipelined + 3 blocking
  constexpr uint64_t kVertices = 1 + kSessions * kBlock;
  constexpr int kOpsPerSession = 600;

  RisGraph<> sys(kVertices);
  size_t bfs = sys.AddAlgorithm<Bfs>(0);
  std::vector<Edge> preload;
  for (int c = 0; c < kSessions; ++c) {
    preload.push_back(Edge{0, 1 + static_cast<uint64_t>(c) * kBlock, 1});
  }
  sys.LoadGraph(preload);
  sys.InitializeResults();

  ThreadPool pool(4);  // real fan-out even on small CI machines
  ServiceOptions opt;
  opt.ingest_shards = 2;
  opt.ingest_shard_capacity = 256;
  opt.pack_parallel_threshold = 1;  // always classify on the pool
  RisGraphService<> service(sys, opt, &pool);
  std::vector<Session*> sessions;
  for (int i = 0; i < kSessions; ++i) sessions.push_back(service.OpenSession());

  std::vector<std::vector<Update>> recorded(kSessions);
  std::atomic<uint64_t> submitted{0};
  std::atomic<uint64_t> txns{0};
  auto block_vertex = [&](int c, uint64_t off) {
    return 1 + static_cast<uint64_t>(c) * kBlock + off % kBlock;
  };

  service.Start();
  std::vector<std::thread> clients;
  for (int c = 0; c < kSessions / 2; ++c) {
    clients.emplace_back([&, c] {
      Rng rng(101 + c);
      Session* s = sessions[c];
      auto& rec = recorded[c];
      for (int i = 0; i < kOpsPerSession; ++i) {
        VertexId a = block_vertex(c, rng.NextBounded(kBlock));
        VertexId b = block_vertex(c, rng.NextBounded(kBlock));
        Weight w = 1 + rng.NextBounded(2);
        Update ins = Update::InsertEdge(a, b, w);
        rec.push_back(ins);
        s->SubmitAsync(ins);
        if (rng.NextBool(0.6)) {
          Update del = Update::DeleteEdge(a, b, w);
          rec.push_back(del);
          s->SubmitAsync(del);
        }
      }
      submitted.fetch_add(rec.size());
      s->DrainAsync();
    });
  }
  for (int k = 0; k < kSessions - kSessions / 2; ++k) {
    int c = kSessions / 2 + k;
    clients.emplace_back([&, c] {
      Rng rng(202 + c);
      Session* s = sessions[c];
      auto& rec = recorded[c];
      for (int i = 0; i < kOpsPerSession; ++i) {
        if (rng.NextBool(0.3)) {
          size_t txn_size = 2 + rng.NextBounded(3);
          std::vector<Update> txn;
          for (size_t t = 0; t < txn_size; ++t) {
            VertexId a = block_vertex(c, rng.NextBounded(kBlock));
            VertexId b = block_vertex(c, rng.NextBounded(kBlock));
            Weight w = 1 + rng.NextBounded(2);
            txn.push_back(rng.NextBool(0.6) ? Update::InsertEdge(a, b, w)
                                            : Update::DeleteEdge(a, b, w));
          }
          for (const Update& u : txn) rec.push_back(u);
          submitted.fetch_add(txn.size());
          txns.fetch_add(1);
          s->SubmitTxn(std::move(txn));
        } else {
          VertexId a = block_vertex(c, rng.NextBounded(kBlock));
          VertexId b = block_vertex(c, rng.NextBounded(kBlock));
          Weight w = 1 + rng.NextBounded(2);
          Update u = rng.NextBool(0.6) ? Update::InsertEdge(a, b, w)
                                       : Update::DeleteEdge(a, b, w);
          rec.push_back(u);
          submitted.fetch_add(1);
          s->Submit(u);
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  service.Stop();

  EXPECT_EQ(service.completed_ops(), submitted.load());
  EXPECT_EQ(service.pipeline().txn_ops(), txns.load());
  EXPECT_GT(service.safe_ops(), 0u);
  EXPECT_GT(service.unsafe_ops(), 0u);

  // Serial per-session replay oracle (blocks are disjoint, so only
  // per-session order matters — exactly what the parallel packer must
  // preserve).
  RisGraph<> oracle(kVertices);
  oracle.AddAlgorithm<Bfs>(0);
  oracle.LoadGraph(preload);
  oracle.InitializeResults();
  for (int c = 0; c < kSessions; ++c) {
    for (const Update& u : recorded[c]) {
      u.kind == UpdateKind::kInsertEdge
          ? oracle.InsEdge(u.edge.src, u.edge.dst, u.edge.weight)
          : oracle.DelEdge(u.edge.src, u.edge.dst, u.edge.weight);
    }
  }
  for (int c = 0; c < kSessions; ++c) {
    for (uint64_t i = 0; i < kBlock; ++i) {
      for (uint64_t j = 0; j < kBlock; ++j) {
        VertexId a = block_vertex(c, i);
        VertexId b = block_vertex(c, j);
        for (Weight w = 1; w <= 2; ++w) {
          ASSERT_EQ(sys.store().EdgeCount(a, EdgeKey{b, w}),
                    oracle.store().EdgeCount(a, EdgeKey{b, w}))
              << "session " << c << " edge " << a << "->" << b << " w" << w;
        }
      }
    }
  }
  auto ref = ReferenceCompute<Bfs>(sys.store(), 0);
  for (VertexId v = 0; v < kVertices; ++v) {
    ASSERT_EQ(sys.GetValue(bfs, v), ref[v]) << v;
  }
}

//===--------------------------------------------------------------------===//
// Packer backpressure
//===--------------------------------------------------------------------===//

// Many all-unsafe pipelined writers pre-pushed into the ring before the
// coordinator starts are the mega-epoch worst case: session freezing caps
// each session at one unsafe claim per epoch, but one ring drain still
// claims one unsafe from EVERY session — with enough sessions the epoch's
// sequential lane runs arbitrarily long. With unsafe_backlog_multiple set,
// no epoch may claim more than multiple x threshold unsafe updates — the
// rest of the stage parks, in claim order, for later epochs. Either way
// the end state (FIFO effects, counters, results) must be identical.
//
// Each session grows its own chain off a preloaded reachable base, so
// every claimed insert extends the BFS tree (=> unsafe) and sessions
// cannot interfere with each other's verdicts.
TEST(IngestPack, BackpressureBoundsUnsafeClaimsPerEpoch) {
  constexpr int kSessions = 64;
  constexpr uint64_t kBlock = 33;  // chain base + kPerSession extensions
  constexpr uint64_t kPerSession = 32;
  constexpr uint64_t kVertices = 1 + kSessions * kBlock;
  constexpr uint64_t kOps = kSessions * kPerSession;

  ThreadPool pool(2);
  auto run = [&](uint64_t multiple) {
    RisGraph<> sys(kVertices);
    size_t bfs = sys.AddAlgorithm<Bfs>(0);
    std::vector<Edge> preload;
    for (int c = 0; c < kSessions; ++c) {
      preload.push_back(Edge{0, 1 + static_cast<uint64_t>(c) * kBlock, 1});
    }
    sys.LoadGraph(preload);
    sys.InitializeResults();

    ServiceOptions opt;
    opt.ingest_shards = 1;
    opt.ingest_shard_capacity = 4096;  // the whole stream fits one ring
    opt.record_epoch_stats = true;
    opt.scheduler.initial_threshold = 8;
    opt.scheduler.adjust_every_epochs = 1 << 30;  // freeze the threshold
    opt.unsafe_backlog_multiple = multiple;
    RisGraphService<> service(sys, opt, &pool);
    std::vector<Session*> sessions;
    for (int c = 0; c < kSessions; ++c) {
      sessions.push_back(service.OpenSession());
    }
    for (uint64_t i = 0; i < kPerSession; ++i) {
      for (int c = 0; c < kSessions; ++c) {
        VertexId base = 1 + static_cast<uint64_t>(c) * kBlock;
        sessions[c]->SubmitAsync(
            Update::InsertEdge(base + i, base + i + 1, 1));
      }
    }
    service.Start();
    for (Session* s : sessions) s->DrainAsync();
    service.Stop();

    EXPECT_EQ(service.completed_ops(), kOps);
    EXPECT_EQ(service.unsafe_ops(), kOps);
    EXPECT_EQ(service.safe_ops(), 0u);
    auto ref = ReferenceCompute<Bfs>(sys.store(), 0);
    for (VertexId v = 0; v < kVertices; ++v) {
      EXPECT_EQ(sys.GetValue(bfs, v), ref[v]) << v;
    }

    uint64_t max_epoch_unsafe = 0;
    for (const EpochStat& e : service.epoch_stats()) {
      max_epoch_unsafe = std::max(max_epoch_unsafe, e.unsafe_ops);
    }
    return max_epoch_unsafe;
  };

  // Valve at 4x a frozen threshold of 8: no epoch claims more than 32.
  EXPECT_LE(run(4), 32u);
  // Control (valve off): one ring drain claims one unsafe from all 64
  // sessions, so some epoch runs well past the valve's bound.
  EXPECT_GT(run(0), 32u);
}

//===--------------------------------------------------------------------===//
// Zero-allocation steady state
//===--------------------------------------------------------------------===//

TEST(IngestPack, SteadyStatePackingAllocatesNothing) {
  constexpr uint64_t kVertices = 32;
  constexpr int kPerEpoch = 128;

  ThreadPool pool(2);
  for (size_t threshold : {~size_t{0}, size_t{1}}) {  // sequential, parallel
    RisGraph<> sys(kVertices, NoHistory());
    sys.AddAlgorithm<Bfs>(0);
    sys.LoadGraph({{0, 1, 1}, {0, 2, 1}});
    sys.InitializeResults();
    PackHarness h(sys, /*sessions=*/4, /*shards=*/2, /*capacity=*/1024,
                  threshold, &pool);

    Rng rng(7);
    // Identical per-epoch load shape: insert a key set one epoch, delete it
    // the next, so capacities stabilize during warm-up.
    std::vector<Edge> keys;
    for (int i = 0; i < kPerEpoch; ++i) {
      keys.push_back(Edge{rng.NextBounded(kVertices),
                          rng.NextBounded(kVertices),
                          1 + rng.NextBounded(2)});
    }
    auto push_epoch = [&](bool inserts) {
      for (int i = 0; i < kPerEpoch; ++i) {
        const Edge& e = keys[i];
        Update u = inserts ? Update::InsertEdge(e.src, e.dst, e.weight)
                           : Update::DeleteEdge(e.src, e.dst, e.weight);
        ASSERT_TRUE(h.PushAsync(i % 4, u));
      }
    };

    // Warm-up: let every scratch structure reach steady-state capacity.
    for (int e = 0; e < 20; ++e) {
      push_epoch(e % 2 == 0);
      h.RunEpoch(nullptr);
    }

    // Measured phase: the pack path (BeginEpoch + PackOnce, inside
    // RunEpoch before execution) must not allocate. Execution and pushes
    // stay outside the measured windows.
    uint64_t allocs = 0;
    for (int e = 0; e < 10; ++e) {
      push_epoch(e % 2 == 0);
      uint64_t before = g_news.load(std::memory_order_relaxed);
      h.RunEpochPackOnly();
      allocs += g_news.load(std::memory_order_relaxed) - before;
      h.ExecutePending();
    }
    EXPECT_EQ(allocs, 0u) << (threshold == 1 ? "parallel" : "sequential")
                          << " packer allocated in steady state";
  }
}

}  // namespace
}  // namespace risgraph
