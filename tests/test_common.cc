#include <gtest/gtest.h>

#include <set>
#include <thread>
#include <vector>

#include "common/latency.h"
#include "common/random.h"
#include "common/spinlock.h"
#include "common/stable_vector.h"
#include "common/timer.h"
#include "common/types.h"

namespace risgraph {
namespace {

TEST(Types, EdgeKeyOrderingAndEquality) {
  EdgeKey a{1, 5};
  EdgeKey b{1, 6};
  EdgeKey c{2, 0};
  EXPECT_LT(a, b);
  EXPECT_LT(b, c);
  EXPECT_EQ(a, (EdgeKey{1, 5}));
  EXPECT_NE(std::hash<EdgeKey>{}(a), std::hash<EdgeKey>{}(b));
}

TEST(Types, UpdateFactories) {
  Update ins = Update::InsertEdge(3, 4, 7);
  EXPECT_EQ(ins.kind, UpdateKind::kInsertEdge);
  EXPECT_EQ(ins.edge.src, 3u);
  EXPECT_EQ(ins.edge.dst, 4u);
  EXPECT_EQ(ins.edge.weight, 7u);
  Update dv = Update::DeleteVertex(9);
  EXPECT_EQ(dv.kind, UpdateKind::kDeleteVertex);
  EXPECT_EQ(dv.edge.src, 9u);
}

TEST(Rng, DeterministicGivenSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) same++;
  }
  EXPECT_LT(same, 5);
}

TEST(Rng, BoundedStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(9);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double d = rng.NextDouble();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(LatencyRecorder, MeanAndPercentiles) {
  LatencyRecorder rec;
  for (int i = 1; i <= 1000; ++i) rec.RecordNanos(i * 1000);  // 1us..1000us
  EXPECT_EQ(rec.count(), 1000u);
  EXPECT_NEAR(rec.MeanMicros(), 500.5, 20.0);
  // P50 about 500us, P99 about 990us (log-bucket error ~6%).
  EXPECT_NEAR(rec.P50Micros(), 500, 40);
  EXPECT_NEAR(rec.P99Micros(), 990, 70);
  EXPECT_GT(rec.PercentileNanos(1.0), 990 * 1000);
}

TEST(LatencyRecorder, FractionBelow) {
  LatencyRecorder rec;
  for (int i = 0; i < 90; ++i) rec.RecordNanos(1000);
  for (int i = 0; i < 10; ++i) rec.RecordNanos(100'000'000);
  EXPECT_NEAR(rec.FractionBelowNanos(1'000'000), 0.9, 0.01);
}

TEST(LatencyRecorder, MergeCombinesCounts) {
  LatencyRecorder a;
  LatencyRecorder b;
  a.RecordNanos(100);
  b.RecordNanos(200);
  a.Merge(b);
  EXPECT_EQ(a.count(), 2u);
}

TEST(Timer, MeasuresElapsed) {
  WallTimer t;
  volatile uint64_t x = 0;
  for (int i = 0; i < 100000; ++i) x = x + i;
  EXPECT_GT(t.ElapsedNanos(), 0);
}

TEST(ComponentTimer, Accumulates) {
  ComponentTimer ct;
  { ScopedTimer s(ct); }
  { ScopedTimer s(ct); }
  EXPECT_GE(ct.TotalNanos(), 0);
  ct.Reset();
  EXPECT_EQ(ct.TotalNanos(), 0);
}

TEST(SpinLock, MutualExclusion) {
  SpinLock lock;
  int counter = 0;
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 10000; ++i) {
        SpinLockGuard g(lock);
        counter++;
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(counter, 80000);
}

TEST(StableVector, ElementsStableAcrossGrowth) {
  StableVector<int, 4> sv;  // tiny segments to force many allocations
  std::vector<int*> ptrs;
  for (int i = 0; i < 1000; ++i) {
    size_t idx = sv.EmplaceBack();
    sv[idx] = i;
    ptrs.push_back(&sv[idx]);
  }
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(*ptrs[i], i);
    EXPECT_EQ(&sv[i], ptrs[i]);  // never moved
  }
}

TEST(StableVector, ResizeAndConcurrentAppend) {
  StableVector<uint64_t, 8> sv;
  sv.Resize(100);
  EXPECT_EQ(sv.size(), 100u);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 250; ++i) sv.EmplaceBack();
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(sv.size(), 1100u);
  EXPECT_GT(sv.MemoryBytes(), 1100 * sizeof(uint64_t));
}

}  // namespace
}  // namespace risgraph
