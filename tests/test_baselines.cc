// The baseline systems must be *correct* (they match the oracle; only their
// data-access patterns differ from RisGraph) and must exhibit the mechanisms
// the paper measures: whole-vertex scans, bloom false-positive scans, log
// scan-on-delete, dense bitmap sweeps, cascade re-derivation.

#include <gtest/gtest.h>

#include <string>

#include "baselines/dd_like.h"
#include "baselines/kickstarter.h"
#include "baselines/scan_stores.h"
#include "core/reference.h"
#include "storage/graph_store.h"
#include "workload/rmat.h"
#include "workload/update_stream.h"

namespace risgraph {
namespace {

StreamWorkload SmallWorkload(uint64_t seed = 3) {
  RmatParams rp;
  rp.scale = 8;
  rp.num_edges = 1200;
  rp.max_weight = 8;
  rp.seed = seed;
  auto edges = GenerateRmat(rp);
  StreamOptions so;
  so.preload_fraction = 0.7;
  so.seed = seed + 100;
  return BuildStream(uint64_t{1} << rp.scale, edges, so);
}

// Mirror of the workload inside a DefaultGraphStore, for oracle computation.
DefaultGraphStore& MirrorStore(const StreamWorkload& wl,
                               DefaultGraphStore& store, size_t n_updates) {
  for (const Edge& e : wl.preload) store.InsertEdge(e);
  for (size_t i = 0; i < n_updates && i < wl.updates.size(); ++i) {
    const Update& u = wl.updates[i];
    if (u.kind == UpdateKind::kInsertEdge) {
      store.InsertEdge(u.edge);
    } else {
      store.DeleteEdge(u.edge);
    }
  }
  return store;
}

template <typename Algo>
void CheckKickStarter(const StreamWorkload& wl, size_t batch_size) {
  KickStarterSystem<Algo> ks(wl.num_vertices, 0);
  ks.Initialize(wl.preload);
  size_t applied = 0;
  std::vector<Update> batch;
  for (const Update& u : wl.updates) {
    batch.push_back(u);
    if (batch.size() == batch_size) {
      ks.ApplyBatch(batch);
      applied += batch.size();
      batch.clear();
    }
    if (applied >= 400) break;
  }
  DefaultGraphStore mirror(wl.num_vertices);
  MirrorStore(wl, mirror, applied);
  auto ref = ReferenceCompute<Algo>(mirror, 0);
  for (VertexId v = 0; v < wl.num_vertices; ++v) {
    ASSERT_EQ(ks.Value(v), ref[v]) << Algo::Name() << " v=" << v;
  }
}

class KickStarterTest : public ::testing::TestWithParam<std::string> {};

TEST_P(KickStarterTest, MatchesOracleAcrossBatchSizes) {
  StreamWorkload wl = SmallWorkload();
  for (size_t batch : {1, 7, 50}) {
    if (GetParam() == "bfs") {
      CheckKickStarter<Bfs>(wl, batch);
    } else if (GetParam() == "sssp") {
      CheckKickStarter<Sssp>(wl, batch);
    } else if (GetParam() == "sswp") {
      CheckKickStarter<Sswp>(wl, batch);
    } else {
      CheckKickStarter<Wcc>(wl, batch);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllAlgos, KickStarterTest,
                         ::testing::Values("bfs", "sssp", "sswp", "wcc"),
                         [](const auto& info) { return info.param; });

TEST(KickStarterMechanism, ScansWholeVertexSetPerBatch) {
  KickStarterLikeStore store(10000);
  store.ApplyBatch({Update::InsertEdge(1, 2)});  // a single tiny update...
  EXPECT_GE(store.scanned_vertices(), 10000u);   // ...still scans everything
}

TEST(KickStarterMechanism, DenseFrontierCostsScaleWithVertices) {
  KickStarterSystem<Bfs> ks(5000, 0);
  ks.Initialize({Edge{0, 1, 1}});
  uint64_t scans0 = ks.bitmap_scans();
  ks.ApplyBatch({Update::InsertEdge(1, 2, 1)});
  // One 1-edge update costs at least one whole-bitmap sweep.
  EXPECT_GE(ks.bitmap_scans() - scans0, 5000u);
  EXPECT_GE(ks.value_copies(), 1u);
}

template <typename Algo>
void CheckDdLike(const StreamWorkload& wl, size_t batch_size) {
  DdLikeSystem<Algo> dd(wl.num_vertices, 0);
  dd.Initialize(wl.preload);
  size_t applied = 0;
  std::vector<Update> batch;
  for (const Update& u : wl.updates) {
    batch.push_back(u);
    if (batch.size() == batch_size) {
      dd.ApplyBatch(batch);
      applied += batch.size();
      batch.clear();
    }
    if (applied >= 300) break;
  }
  DefaultGraphStore mirror(wl.num_vertices);
  MirrorStore(wl, mirror, applied);
  auto ref = ReferenceCompute<Algo>(mirror, 0);
  for (VertexId v = 0; v < wl.num_vertices; ++v) {
    ASSERT_EQ(dd.Value(v), ref[v]) << Algo::Name() << " v=" << v;
  }
}

class DdLikeTest : public ::testing::TestWithParam<std::string> {};

TEST_P(DdLikeTest, MatchesOracleAcrossBatchSizes) {
  StreamWorkload wl = SmallWorkload(7);
  for (size_t batch : {1, 13}) {
    if (GetParam() == "bfs") {
      CheckDdLike<Bfs>(wl, batch);
    } else if (GetParam() == "sssp") {
      CheckDdLike<Sssp>(wl, batch);
    } else if (GetParam() == "sswp") {
      CheckDdLike<Sswp>(wl, batch);
    } else {
      CheckDdLike<Wcc>(wl, batch);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllAlgos, DdLikeTest,
                         ::testing::Values("bfs", "sssp", "sswp", "wcc"),
                         [](const auto& info) { return info.param; });

TEST(LiveGraphLike, DuplicatesAndDeletes) {
  LiveGraphLikeStore store(16);
  store.InsertEdge(Edge{0, 1, 5});
  store.InsertEdge(Edge{0, 1, 5});
  store.InsertEdge(Edge{0, 2, 3});
  uint64_t total = 0;
  store.ForEachOut(0, [&](VertexId, Weight, uint64_t c) { total += c; });
  EXPECT_EQ(total, 3u);
  EXPECT_TRUE(store.DeleteEdge(Edge{0, 1, 5}));
  EXPECT_TRUE(store.DeleteEdge(Edge{0, 1, 5}));
  EXPECT_FALSE(store.DeleteEdge(Edge{0, 1, 5}));
  total = 0;
  store.ForEachOut(0, [&](VertexId, Weight, uint64_t c) { total += c; });
  EXPECT_EQ(total, 1u);
}

TEST(LiveGraphLike, DeletionsScanTheLog) {
  LiveGraphLikeStore store(4);
  for (uint64_t i = 0; i < 1000; ++i) store.InsertEdge(Edge{0, i + 1, 1});
  uint64_t before = store.scanned_entries();
  store.DeleteEdge(Edge{0, 1000, 1});  // last entry: scans the whole log
  EXPECT_GE(store.scanned_entries() - before, 999u);
}

TEST(GraphOneLike, CompactionAppliesLog) {
  GraphOneLikeStore store(8);
  store.Append(Update::InsertEdge(0, 1));
  store.Append(Update::InsertEdge(0, 2));
  store.Append(Update::DeleteEdge(0, 1));
  EXPECT_EQ(store.log_size(), 3u);
  store.Compact();
  EXPECT_EQ(store.log_size(), 0u);
  uint64_t count = 0;
  VertexId only = kInvalidVertex;
  store.ForEachOut(0, [&](VertexId d, Weight, uint64_t) {
    count++;
    only = d;
  });
  EXPECT_EQ(count, 1u);
  EXPECT_EQ(only, 2u);
}

TEST(RecomputeEngine, MatchesOracle) {
  StreamWorkload wl = SmallWorkload(11);
  DefaultGraphStore store(wl.num_vertices);
  MirrorStore(wl, store, 0);
  RecomputeEngine<Sssp, DefaultGraphStore> engine(store);
  auto got = engine.Compute(0);
  auto ref = ReferenceCompute<Sssp>(store, 0);
  EXPECT_EQ(got, ref);
}

}  // namespace
}  // namespace risgraph
