#include "core/classifier_trainer.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/algorithm_api.h"
#include "core/incremental_engine.h"
#include "core/reference.h"
#include "storage/graph_store.h"
#include "workload/rmat.h"
#include "workload/update_stream.h"

namespace risgraph {
namespace {

// Ground truth for the synthetic environment: edge-parallel wins iff the
// frontier carries more than 64 edges per active vertex.
bool EdgeWinsTruth(uint64_t nv, uint64_t ne) { return ne > 64 * nv; }

// Simulated step duration: the losing mode is 2x slower (comfortably above
// the 20% margin), plus small deterministic jitter.
int64_t SimulatedNanos(uint64_t nv, uint64_t ne, ParallelMode mode,
                       uint64_t salt) {
  bool edge_wins = EdgeWinsTruth(nv, ne);
  bool ran_edge = mode == ParallelMode::kEdgeParallel;
  int64_t base = 1000 + static_cast<int64_t>(ne / 8 + nv);
  if (edge_wins != ran_edge) base *= 2;
  return base + static_cast<int64_t>(salt % 37);
}

TEST(OnlineClassifierTrainer, LearnsSyntheticBoundary) {
  OnlineClassifierTrainer::Options opt;
  opt.explore_fraction = 0.5;  // aggressive exploration for fast coverage
  opt.refit_interval = 256;
  // Start from a deliberately wrong boundary: "edge-parallel never wins".
  OnlineClassifierTrainer trainer(opt, HybridClassifier(0.0, 1e9));

  Rng rng(99);
  for (int i = 0; i < 20000; ++i) {
    uint64_t nv = uint64_t{1} << rng.NextBounded(14);
    uint64_t ne = nv * (uint64_t{1} << rng.NextBounded(10));
    ParallelMode mode = trainer.ChooseMode(nv, ne);
    trainer.Observe(nv, ne, mode, SimulatedNanos(nv, ne, mode, rng.Next()));
  }
  ASSERT_GE(trainer.refit_count(), 1u);
  EXPECT_GT(trainer.explore_count(), 0u);
  EXPECT_GT(trainer.labeled_cells(), 10u);

  // The learned boundary should agree with the ground truth away from it.
  int correct = 0;
  int total = 0;
  for (uint64_t lv = 2; lv <= 12; lv += 2) {
    for (uint64_t le_per_v = 0; le_per_v <= 10; le_per_v += 2) {
      uint64_t nv = uint64_t{1} << lv;
      uint64_t ne = nv << le_per_v;
      // Skip shapes within 2x of the boundary (label noise region).
      if (ne > 32 * nv && ne < 128 * nv) continue;
      bool predicted = trainer.classifier().Decide(nv, ne) ==
                       ParallelMode::kEdgeParallel;
      correct += predicted == EdgeWinsTruth(nv, ne);
      total++;
    }
  }
  EXPECT_GE(correct, total * 9 / 10)
      << "learned boundary agrees on " << correct << "/" << total;
}

TEST(OnlineClassifierTrainer, NoRefitWithoutBothClasses) {
  OnlineClassifierTrainer trainer;
  // Only vertex-parallel-wins evidence: refits must not fire (a one-sided
  // least-squares fit would degenerate).
  for (int i = 0; i < 5000; ++i) {
    uint64_t nv = 1024;
    uint64_t ne = 2048;
    ParallelMode mode = trainer.ChooseMode(nv, ne);
    int64_t ns = mode == ParallelMode::kVertexParallel ? 1000 : 5000;
    trainer.Observe(nv, ne, mode, ns);
  }
  EXPECT_EQ(trainer.refit_count(), 0u);
}

TEST(OnlineClassifierTrainer, MarginFilterSuppressesNoise) {
  OnlineClassifierTrainer::Options opt;
  opt.min_margin = 0.2;
  OnlineClassifierTrainer trainer(opt);
  // Means differ by only 5% — below the paper's 20% filter.
  for (int i = 0; i < 1000; ++i) {
    trainer.Observe(64, 4096, ParallelMode::kVertexParallel, 1000);
    trainer.Observe(64, 4096, ParallelMode::kEdgeParallel, 1050);
  }
  EXPECT_EQ(trainer.labeled_cells(), 0u);
  EXPECT_EQ(trainer.refit_count(), 0u);
}

TEST(OnlineClassifierTrainer, IgnoresInvalidObservations) {
  OnlineClassifierTrainer trainer;
  trainer.Observe(10, 10, ParallelMode::kHybrid, 1000);  // not a real mode
  trainer.Observe(10, 10, ParallelMode::kVertexParallel, 0);  // no duration
  EXPECT_EQ(trainer.labeled_cells(), 0u);
}

// Integration: an engine driven by the trainer still computes exact results
// while the trainer accumulates real observations.
TEST(OnlineClassifierTrainer, EngineIntegrationStaysCorrect) {
  RmatParams rp;
  rp.scale = 9;
  rp.num_edges = 6000;
  rp.seed = 5;
  auto edges = GenerateRmat(rp);
  StreamWorkload wl = BuildStream(uint64_t{1} << rp.scale, edges, {});

  DefaultGraphStore store(wl.num_vertices);
  for (const Edge& e : wl.preload) store.InsertEdge(e);

  OnlineClassifierTrainer::Options topt;
  topt.explore_fraction = 0.3;
  topt.refit_interval = 64;
  OnlineClassifierTrainer trainer(topt);

  EngineOptions eopt;
  eopt.sequential_edge_threshold = 0;  // force every step through the trainer
  eopt.online_trainer = &trainer;
  IncrementalEngine<Bfs> engine(store, 0, eopt);

  size_t step = 0;
  for (const Update& u : wl.updates) {
    if (u.kind == UpdateKind::kInsertEdge) {
      store.InsertEdge(u.edge);
      engine.OnInsert(u.edge);
    } else {
      DeleteResult r = store.DeleteEdge(u.edge);
      engine.OnDelete(u.edge, r);
    }
    if (++step >= 300) break;
  }
  auto ref = ReferenceCompute<Bfs>(store, 0);
  for (VertexId v = 0; v < wl.num_vertices; ++v) {
    ASSERT_EQ(engine.Value(v), ref[v]) << v;
  }
  EXPECT_GT(trainer.explore_count() + trainer.labeled_cells(), 0u);
}

}  // namespace
}  // namespace risgraph
