#include "workload/edgelist_io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "common/random.h"
#include "workload/rmat.h"

namespace risgraph {
namespace {

class EdgeListIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "risgraph_el_" +
            std::to_string(reinterpret_cast<uintptr_t>(this));
    std::remove(path_.c_str());
  }
  void TearDown() override { std::remove(path_.c_str()); }

  void WriteFile(const std::string& content) {
    std::FILE* f = std::fopen(path_.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fwrite(content.data(), 1, content.size(), f);
    std::fclose(f);
  }

  std::string path_;
};

TEST_F(EdgeListIoTest, ParsesSnapStyleText) {
  WriteFile(
      "# Directed graph: example\n"
      "# Nodes: 4 Edges: 3\n"
      "0\t1\n"
      "1\t2\n"
      "3 0\n");
  ParsedEdgeList parsed;
  ASSERT_TRUE(LoadEdgeListText(path_, &parsed));
  EXPECT_EQ(parsed.num_vertices, 4u);
  ASSERT_EQ(parsed.edges.size(), 3u);
  EXPECT_EQ(parsed.edges[0], (Edge{0, 1, 1}));
  EXPECT_EQ(parsed.edges[2], (Edge{3, 0, 1}));
  EXPECT_EQ(parsed.lines_skipped, 2u);  // the two comment lines
}

TEST_F(EdgeListIoTest, ParsesWeightsWhenAsked) {
  WriteFile("0 1 7\n1 2 9\n2 0\n");
  ParsedEdgeList parsed;
  EdgeListParseOptions options;
  options.weighted = true;
  ASSERT_TRUE(LoadEdgeListText(path_, &parsed, options));
  EXPECT_EQ(parsed.edges[0].weight, 7u);
  EXPECT_EQ(parsed.edges[1].weight, 9u);
  EXPECT_EQ(parsed.edges[2].weight, 1u);  // missing column defaults to 1
}

TEST_F(EdgeListIoTest, IgnoresWeightColumnByDefault) {
  WriteFile("0 1 7\n");
  ParsedEdgeList parsed;
  ASSERT_TRUE(LoadEdgeListText(path_, &parsed));
  EXPECT_EQ(parsed.edges[0].weight, 1u);
}

TEST_F(EdgeListIoTest, RemapsSparseIds) {
  WriteFile("1000000 5\n5 70000\n% konect header\n");
  ParsedEdgeList parsed;
  EdgeListParseOptions options;
  options.remap_ids = true;
  ASSERT_TRUE(LoadEdgeListText(path_, &parsed, options));
  EXPECT_EQ(parsed.num_vertices, 3u);
  ASSERT_EQ(parsed.id_map.size(), 3u);
  EXPECT_EQ(parsed.id_map[0], 1000000u);
  EXPECT_EQ(parsed.id_map[1], 5u);
  EXPECT_EQ(parsed.id_map[2], 70000u);
  // First edge became (0 -> 1), second (1 -> 2).
  EXPECT_EQ(parsed.edges[0], (Edge{0, 1, 1}));
  EXPECT_EQ(parsed.edges[1], (Edge{1, 2, 1}));
}

TEST_F(EdgeListIoTest, SkipsSelfLoopsWhenAsked) {
  WriteFile("0 0\n0 1\n1 1\n");
  ParsedEdgeList parsed;
  EdgeListParseOptions options;
  options.skip_self_loops = true;
  ASSERT_TRUE(LoadEdgeListText(path_, &parsed, options));
  ASSERT_EQ(parsed.edges.size(), 1u);
  EXPECT_EQ(parsed.edges[0], (Edge{0, 1, 1}));
  EXPECT_EQ(parsed.lines_skipped, 2u);
}

TEST_F(EdgeListIoTest, MalformedLinesAreCountedNotFatal) {
  WriteFile("0 1\nnot an edge\n2\n3 4\n");
  ParsedEdgeList parsed;
  ASSERT_TRUE(LoadEdgeListText(path_, &parsed));
  EXPECT_EQ(parsed.edges.size(), 2u);
  EXPECT_EQ(parsed.lines_skipped, 2u);
}

TEST_F(EdgeListIoTest, MissingFileFails) {
  ParsedEdgeList parsed;
  std::string error;
  EXPECT_FALSE(LoadEdgeListText("/nonexistent/g.txt", &parsed, {}, &error));
  EXPECT_FALSE(error.empty());
}

TEST_F(EdgeListIoTest, TextRoundtrip) {
  std::vector<Edge> edges = {{0, 1, 3}, {1, 2, 5}, {9, 0, 1}};
  ASSERT_TRUE(SaveEdgeListText(path_, edges, /*weighted=*/true));
  ParsedEdgeList parsed;
  EdgeListParseOptions options;
  options.weighted = true;
  ASSERT_TRUE(LoadEdgeListText(path_, &parsed, options));
  EXPECT_EQ(parsed.edges, edges);
  EXPECT_EQ(parsed.num_vertices, 10u);
}

TEST_F(EdgeListIoTest, BinaryRoundtripLargeRandom) {
  RmatParams rp;
  rp.scale = 10;
  rp.num_edges = 20000;
  rp.max_weight = 100;
  rp.seed = 7;
  std::vector<Edge> edges = GenerateRmat(rp);
  ASSERT_TRUE(SaveEdgeListBinary(path_, uint64_t{1} << rp.scale, edges));
  ParsedEdgeList parsed;
  ASSERT_TRUE(LoadEdgeListBinary(path_, &parsed));
  EXPECT_EQ(parsed.num_vertices, uint64_t{1} << rp.scale);
  EXPECT_EQ(parsed.edges, edges);
}

TEST_F(EdgeListIoTest, BinaryDetectsTruncation) {
  std::vector<Edge> edges = {{0, 1, 1}, {1, 2, 2}, {2, 3, 3}};
  ASSERT_TRUE(SaveEdgeListBinary(path_, 4, edges));
  // Chop off the trailer plus part of the last record.
  std::FILE* f = std::fopen(path_.c_str(), "rb");
  std::fseek(f, 0, SEEK_END);
  long size = std::ftell(f);
  std::fclose(f);
  ASSERT_EQ(truncate(path_.c_str(), size - 10), 0);
  ParsedEdgeList parsed;
  std::string error;
  EXPECT_FALSE(LoadEdgeListBinary(path_, &parsed, &error));
  EXPECT_NE(error.find("truncated"), std::string::npos) << error;
}

TEST_F(EdgeListIoTest, BinaryDetectsPayloadCorruption) {
  std::vector<Edge> edges = {{0, 1, 1}, {1, 2, 2}, {2, 3, 3}};
  ASSERT_TRUE(SaveEdgeListBinary(path_, 4, edges));
  std::FILE* f = std::fopen(path_.c_str(), "rb+");
  std::fseek(f, 40, SEEK_SET);  // inside the first record
  int c = std::fgetc(f);
  std::fseek(f, 40, SEEK_SET);
  std::fputc(c ^ 0x01, f);
  std::fclose(f);
  ParsedEdgeList parsed;
  std::string error;
  EXPECT_FALSE(LoadEdgeListBinary(path_, &parsed, &error));
  EXPECT_NE(error.find("CRC"), std::string::npos) << error;
}

TEST_F(EdgeListIoTest, BinaryRejectsWrongMagic) {
  WriteFile("this is not a binary edge list, but it is long enough......");
  ParsedEdgeList parsed;
  std::string error;
  EXPECT_FALSE(LoadEdgeListBinary(path_, &parsed, &error));
  EXPECT_NE(error.find("magic"), std::string::npos) << error;
}

TEST(InferNumVertices, EmptyAndNonEmpty) {
  EXPECT_EQ(InferNumVertices({}), 0u);
  EXPECT_EQ(InferNumVertices({{3, 9, 1}, {2, 4, 1}}), 10u);
}

}  // namespace
}  // namespace risgraph
