// Pipelined (async) sessions: Figure 9's full epoch-loop schema, where
// sessions queue multiple updates and everything behind an unsafe update is
// deferred to the next epoch. Invariants:
//   * per-session FIFO effects: a single session's stream produces exactly
//     the store state of a serial replay, even through the parallel lane
//   * final results equal a from-scratch recompute under many sessions
//   * DrainAsync accounts for every submitted update

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "common/random.h"
#include "core/algorithm_api.h"
#include "core/reference.h"
#include "runtime/risgraph.h"
#include "runtime/service.h"
#include "workload/rmat.h"
#include "workload/update_stream.h"

namespace risgraph {
namespace {

TEST(Pipelined, SingleSessionMatchesSerialReplayExactly) {
  constexpr uint64_t kVertices = 128;
  // The hazard this guards: ins/del pairs of the SAME edge key queued
  // back-to-back — out-of-order execution would leave a different duplicate
  // count than serial replay.
  std::vector<Update> stream;
  Rng rng(3);
  for (int i = 0; i < 3000; ++i) {
    VertexId a = rng.NextBounded(kVertices);
    VertexId b = rng.NextBounded(kVertices);
    Weight w = 1 + rng.NextBounded(3);
    stream.push_back(Update::InsertEdge(a, b, w));
    if (rng.NextBool(0.7)) {
      stream.push_back(Update::DeleteEdge(a, b, w));  // immediate undo
    }
  }

  RisGraph<> sys(kVertices);
  size_t bfs = sys.AddAlgorithm<Bfs>(0);
  sys.InitializeResults();
  RisGraphService<> service(sys);
  Session* session = service.OpenSession();
  service.Start();
  for (const Update& u : stream) session->SubmitAsync(u);
  VersionId last = session->DrainAsync();
  service.Stop();
  EXPECT_EQ(session->async_completed(), stream.size());
  EXPECT_EQ(last, sys.GetCurrentVersion());

  // Serial replay oracle.
  RisGraph<> oracle(kVertices);
  size_t obfs = oracle.AddAlgorithm<Bfs>(0);
  oracle.InitializeResults();
  for (const Update& u : stream) {
    u.kind == UpdateKind::kInsertEdge
        ? oracle.InsEdge(u.edge.src, u.edge.dst, u.edge.weight)
        : oracle.DelEdge(u.edge.src, u.edge.dst, u.edge.weight);
  }
  for (VertexId v = 0; v < kVertices; ++v) {
    ASSERT_EQ(sys.GetValue(bfs, v), oracle.GetValue(obfs, v)) << v;
    for (Weight w = 1; w <= 3; ++w) {
      for (VertexId d = 0; d < kVertices; ++d) {
        ASSERT_EQ(sys.store().EdgeCount(v, EdgeKey{d, w}),
                  oracle.store().EdgeCount(v, EdgeKey{d, w}))
            << v << "->" << d << " w" << w;
      }
    }
  }
}

TEST(Pipelined, ManySessionsConvergeToOracle) {
  constexpr uint64_t kVertices = 1 << 9;
  constexpr int kSessions = 12;
  RmatParams rp;
  rp.scale = 9;
  rp.num_edges = 5000;
  rp.max_weight = 6;
  rp.seed = 4;
  auto edges = GenerateRmat(rp);
  StreamOptions so;
  so.preload_fraction = 0.7;
  StreamWorkload wl = BuildStream(kVertices, edges, so);

  RisGraph<> sys(kVertices);
  size_t bfs = sys.AddAlgorithm<Bfs>(0);
  sys.LoadGraph(wl.preload);
  sys.InitializeResults();
  RisGraphService<> service(sys);
  std::vector<Session*> sessions;
  for (int i = 0; i < kSessions; ++i) sessions.push_back(service.OpenSession());
  service.Start();

  std::vector<std::thread> clients;
  for (int c = 0; c < kSessions; ++c) {
    clients.emplace_back([&, c] {
      for (size_t i = c; i < wl.updates.size(); i += kSessions) {
        sessions[c]->SubmitAsync(wl.updates[i]);
      }
      sessions[c]->DrainAsync();
    });
  }
  for (auto& t : clients) t.join();
  service.Stop();

  uint64_t total = 0;
  for (Session* s : sessions) total += s->async_completed();
  EXPECT_EQ(service.completed_ops(), total);
  EXPECT_GT(service.safe_ops(), 0u);
  EXPECT_GT(service.unsafe_ops(), 0u);

  auto ref = ReferenceCompute<Bfs>(sys.store(), 0);
  for (VertexId v = 0; v < kVertices; ++v) {
    ASSERT_EQ(sys.GetValue(bfs, v), ref[v]) << v;
  }
}

TEST(Pipelined, MixedSyncAndAsyncSessions) {
  constexpr uint64_t kVertices = 256;
  RisGraph<> sys(kVertices);
  size_t bfs = sys.AddAlgorithm<Bfs>(0);
  sys.InitializeResults();
  RisGraphService<> service(sys);
  Session* sync_s = service.OpenSession();
  Session* async_s = service.OpenSession();
  service.Start();

  std::thread t1([&] {
    for (VertexId v = 1; v < 100; ++v) {
      sync_s->Submit(Update::InsertEdge(v - 1, v, 1));
    }
  });
  std::thread t2([&] {
    for (VertexId v = 100; v < 200; ++v) {
      async_s->SubmitAsync(Update::InsertEdge(v - 1, v, 1));
    }
    async_s->DrainAsync();
  });
  t1.join();
  t2.join();
  service.Stop();

  auto ref = ReferenceCompute<Bfs>(sys.store(), 0);
  for (VertexId v = 0; v < kVertices; ++v) {
    ASSERT_EQ(sys.GetValue(bfs, v), ref[v]) << v;
  }
  EXPECT_EQ(sys.GetValue(bfs, 199), 199u);  // the full chain exists
}

TEST(Pipelined, UnsafeUpdateDefersQueueTail) {
  // A stream whose first update is unsafe and whose tail depends on it: the
  // tail must be (re)classified only after the unsafe update executed, so
  // the final state must reflect full FIFO application.
  constexpr uint64_t kVertices = 16;
  RisGraph<> sys(kVertices);
  size_t bfs = sys.AddAlgorithm<Bfs>(0);
  sys.InitializeResults();
  RisGraphService<> service(sys);
  Session* s = service.OpenSession();
  service.Start();

  s->SubmitAsync(Update::InsertEdge(0, 1, 1));  // unsafe: reaches 1
  s->SubmitAsync(Update::InsertEdge(1, 2, 1));  // unsafe once 1 is reached
  s->SubmitAsync(Update::InsertEdge(2, 3, 1));  // unsafe once 2 is reached
  s->SubmitAsync(Update::DeleteEdge(0, 1, 1));  // tree edge: unsafe
  s->SubmitAsync(Update::InsertEdge(0, 1, 1));  // unsafe again
  s->DrainAsync();
  service.Stop();

  EXPECT_EQ(sys.GetValue(bfs, 3), 3u);
  EXPECT_EQ(sys.store().EdgeCount(0, EdgeKey{1, 1}), 1u);
  auto ref = ReferenceCompute<Bfs>(sys.store(), 0);
  for (VertexId v = 0; v < kVertices; ++v) {
    ASSERT_EQ(sys.GetValue(bfs, v), ref[v]) << v;
  }
}

TEST(Pipelined, TrySubmitAsyncShedsWhenRingFullAndRecovers) {
  // The non-blocking pipelined push (the RPC tier's kBusy path): with the
  // coordinator stopped, the shard ring absorbs exactly its capacity and
  // TrySubmitAsync fails fast — no thread parks — rolling the submitted
  // counter back so DrainAsync accounting stays exact.
  constexpr uint64_t kVertices = 64;
  RisGraph<> sys(kVertices);
  size_t bfs = sys.AddAlgorithm<Bfs>(0);
  sys.InitializeResults();
  ServiceOptions opt;
  opt.ingest_shards = 1;
  opt.ingest_shard_capacity = 8;
  RisGraphService<> service(sys, opt);
  Session* s = service.OpenSession();

  size_t accepted = 0;
  while (s->TrySubmitAsync(Update::InsertEdge(0, 1 + accepted, 1))) {
    accepted++;
    ASSERT_LT(accepted, 64u);  // must stop at the ring capacity
  }
  EXPECT_EQ(accepted, 8u);  // capacity rounds to a power of two
  EXPECT_EQ(s->async_submitted(), accepted);  // failed pushes rolled back

  service.Start();
  // The coordinator drains the ring; pushes succeed again.
  Update extra = Update::InsertEdge(0, 40, 1);
  while (!s->TrySubmitAsync(extra)) {
    std::this_thread::yield();
  }
  VersionId last = s->DrainAsync();
  EXPECT_EQ(s->async_completed(), accepted + 1);
  EXPECT_EQ(last, sys.GetCurrentVersion());
  service.Stop();

  EXPECT_EQ(sys.GetValue(bfs, 40), 1u);
  auto ref = ReferenceCompute<Bfs>(sys.store(), 0);
  for (VertexId v = 0; v < kVertices; ++v) {
    ASSERT_EQ(sys.GetValue(bfs, v), ref[v]) << v;
  }
}

TEST(Pipelined, DrainOnEmptyQueueReturnsImmediately) {
  RisGraph<> sys(8);
  sys.AddAlgorithm<Bfs>(0);
  sys.InitializeResults();
  RisGraphService<> service(sys);
  Session* s = service.OpenSession();
  service.Start();
  EXPECT_EQ(s->DrainAsync(), 0u);  // nothing submitted
  service.Stop();
}

}  // namespace
}  // namespace risgraph
