// Crash-recovery and log-compaction flows (recovery.h), including failure
// injection: random truncation and random corruption of the log tail must
// never crash recovery and must always yield a state equal to some prefix of
// the committed history.

#include "wal/recovery.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "common/random.h"
#include "core/algorithm_api.h"
#include "core/reference.h"
#include "shard/partition_map.h"
#include "shard/sharded_store.h"
#include "workload/rmat.h"
#include "workload/update_stream.h"

namespace risgraph {
namespace {

class RecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    base_ = ::testing::TempDir() + "risgraph_rec_" +
            std::to_string(reinterpret_cast<uintptr_t>(this));
    wal_ = base_ + ".wal";
    ckpt_ = base_ + ".ckpt";
    std::remove(wal_.c_str());
    std::remove(ckpt_.c_str());
    std::remove(PartitionMapSidecarPath(wal_).c_str());
  }
  void TearDown() override {
    std::remove(wal_.c_str());
    std::remove(ckpt_.c_str());
    std::remove(PartitionMapSidecarPath(wal_).c_str());
  }

  long FileSize(const std::string& path) {
    std::FILE* f = std::fopen(path.c_str(), "rb");
    if (f == nullptr) return -1;
    std::fseek(f, 0, SEEK_END);
    long size = std::ftell(f);
    std::fclose(f);
    return size;
  }

  std::string base_, wal_, ckpt_;
};

StreamWorkload SmallWorkload(uint64_t seed) {
  RmatParams rp;
  rp.scale = 7;
  rp.num_edges = 800;
  rp.max_weight = 4;
  rp.seed = seed;
  StreamOptions so;
  so.preload_fraction = 0.0;  // everything flows through the logged API
  so.insert_fraction = 0.7;
  so.seed = seed + 1;
  return BuildStream(uint64_t{1} << rp.scale, GenerateRmat(rp), so);
}

TEST_F(RecoveryTest, WalOnlyRecoveryReconstructsState) {
  StreamWorkload wl = SmallWorkload(3);
  std::vector<uint64_t> expected;
  {
    RisGraphOptions opt;
    opt.wal_path = wal_;
    RisGraph<> sys(wl.num_vertices, opt);
    size_t bfs = sys.AddAlgorithm<Bfs>(0);
    sys.InitializeResults();
    for (const Update& u : wl.updates) {
      if (u.kind == UpdateKind::kInsertEdge) {
        sys.InsEdge(u.edge.src, u.edge.dst, u.edge.weight);
      } else {
        sys.DelEdge(u.edge.src, u.edge.dst, u.edge.weight);
      }
    }
    for (VertexId v = 0; v < wl.num_vertices; ++v) {
      expected.push_back(sys.GetValue(bfs, v));
    }
  }  // "crash": destructor flushes, process state is lost

  RisGraphOptions opt;
  opt.wal_path = wal_;
  RisGraph<> recovered(wl.num_vertices, opt);
  RecoveryResult r = RecoverRisGraph(recovered, ckpt_, wal_);
  EXPECT_FALSE(r.checkpoint_loaded);  // none written
  EXPECT_GT(r.replayed_records, 0u);
  size_t bfs = recovered.AddAlgorithm<Bfs>(0);
  recovered.InitializeResults();
  for (VertexId v = 0; v < wl.num_vertices; ++v) {
    ASSERT_EQ(recovered.GetValue(bfs, v), expected[v]) << v;
  }
}

TEST_F(RecoveryTest, CompactionShrinksLogAndPreservesState) {
  StreamWorkload wl = SmallWorkload(9);
  std::vector<uint64_t> expected;
  uint64_t replay_after_compact = 0;
  {
    RisGraphOptions opt;
    opt.wal_path = wal_;
    RisGraph<> sys(wl.num_vertices, opt);
    size_t bfs = sys.AddAlgorithm<Bfs>(0);
    sys.InitializeResults();
    size_t half = wl.updates.size() / 2;
    for (size_t i = 0; i < half; ++i) {
      const Update& u = wl.updates[i];
      u.kind == UpdateKind::kInsertEdge
          ? sys.InsEdge(u.edge.src, u.edge.dst, u.edge.weight)
          : sys.DelEdge(u.edge.src, u.edge.dst, u.edge.weight);
    }
    long before = FileSize(wal_);
    ASSERT_TRUE(CompactWal(sys, ckpt_));
    EXPECT_LT(FileSize(wal_), before);  // the log was truncated

    for (size_t i = half; i < wl.updates.size(); ++i) {
      const Update& u = wl.updates[i];
      u.kind == UpdateKind::kInsertEdge
          ? sys.InsEdge(u.edge.src, u.edge.dst, u.edge.weight)
          : sys.DelEdge(u.edge.src, u.edge.dst, u.edge.weight);
    }
    replay_after_compact = wl.updates.size() - half;
    for (VertexId v = 0; v < wl.num_vertices; ++v) {
      expected.push_back(sys.GetValue(bfs, v));
    }
  }

  RisGraphOptions opt;
  opt.wal_path = wal_;
  RisGraph<> recovered(0, opt);
  RecoveryResult r = RecoverRisGraph(recovered, ckpt_, wal_);
  EXPECT_TRUE(r.checkpoint_loaded);
  EXPECT_EQ(r.replayed_records, replay_after_compact);
  size_t bfs = recovered.AddAlgorithm<Bfs>(0);
  recovered.InitializeResults();
  for (VertexId v = 0; v < wl.num_vertices; ++v) {
    ASSERT_EQ(recovered.GetValue(bfs, v), expected[v]) << v;
  }
}

TEST_F(RecoveryTest, LsnSequenceContinuesAfterRecovery) {
  {
    RisGraphOptions opt;
    opt.wal_path = wal_;
    RisGraph<> sys(8, opt);
    sys.AddAlgorithm<Bfs>(0);
    sys.InitializeResults();
    sys.InsEdge(0, 1);
    sys.InsEdge(1, 2);
  }
  {
    RisGraphOptions opt;
    opt.wal_path = wal_;
    RisGraph<> sys(8, opt);
    RecoveryResult r = RecoverRisGraph(sys, ckpt_, wal_);
    EXPECT_EQ(r.next_lsn, 2u);
    sys.AddAlgorithm<Bfs>(0);
    sys.InitializeResults();
    sys.InsEdge(2, 3);  // must get LSN 2, not 0
  }
  std::vector<uint64_t> lsns;
  WriteAheadLog::Replay(wal_, [&](const WalRecord& r) {
    lsns.push_back(r.lsn);
  });
  ASSERT_EQ(lsns.size(), 3u);
  EXPECT_EQ(lsns[0], 0u);
  EXPECT_EQ(lsns[1], 1u);
  EXPECT_EQ(lsns[2], 2u);  // strictly increasing across the restart
}

// Failure injection: truncate the log at every possible byte boundary of the
// last few records; recovery must yield exactly the longest intact prefix.
TEST_F(RecoveryTest, RandomTruncationYieldsPrefix) {
  constexpr int kUpdates = 20;
  {
    RisGraphOptions opt;
    opt.wal_path = wal_;
    RisGraph<> sys(64, opt);
    sys.AddAlgorithm<Bfs>(0);
    sys.InitializeResults();
    for (int i = 0; i < kUpdates; ++i) sys.InsEdge(i, i + 1);
  }
  long full = FileSize(wal_);
  ASSERT_GT(full, 0);
  const long record = full / kUpdates;

  Rng rng(5);
  for (int trial = 0; trial < 30; ++trial) {
    long cut = static_cast<long>(rng.NextBounded(full + 1));
    std::string copy = base_ + ".cut";
    {
      std::FILE* in = std::fopen(wal_.c_str(), "rb");
      std::FILE* out = std::fopen(copy.c_str(), "wb");
      std::vector<uint8_t> data(cut);
      ASSERT_EQ(std::fread(data.data(), 1, cut, in),
                static_cast<size_t>(cut));
      std::fwrite(data.data(), 1, cut, out);
      std::fclose(in);
      std::fclose(out);
    }
    uint64_t replayed = WriteAheadLog::Replay(copy, [](const WalRecord&) {});
    EXPECT_EQ(replayed, static_cast<uint64_t>(cut / record))
        << "cut at byte " << cut;
    std::remove(copy.c_str());
  }
}

// Bit flips anywhere in the log: recovery must stop at or before the flip,
// never crash, and every record it does deliver must be one we wrote.
TEST_F(RecoveryTest, RandomCorruptionNeverDeliversGarbage) {
  constexpr int kUpdates = 32;
  std::vector<Update> written;
  {
    RisGraphOptions opt;
    opt.wal_path = wal_;
    RisGraph<> sys(64, opt);
    sys.AddAlgorithm<Bfs>(0);
    sys.InitializeResults();
    for (int i = 0; i < kUpdates; ++i) {
      Update u = Update::InsertEdge(i, i + 1, 1 + i % 3);
      sys.InsEdge(u.edge.src, u.edge.dst, u.edge.weight);
      written.push_back(u);
    }
  }
  long full = FileSize(wal_);
  Rng rng(17);
  for (int trial = 0; trial < 40; ++trial) {
    std::string copy = base_ + ".bad";
    {
      std::FILE* in = std::fopen(wal_.c_str(), "rb");
      std::vector<uint8_t> data(full);
      ASSERT_EQ(std::fread(data.data(), 1, full, in),
                static_cast<size_t>(full));
      std::fclose(in);
      size_t pos = rng.NextBounded(full);
      data[pos] ^= uint8_t{1} << rng.NextBounded(8);
      std::FILE* out = std::fopen(copy.c_str(), "wb");
      std::fwrite(data.data(), 1, full, out);
      std::fclose(out);
    }
    size_t i = 0;
    bool mismatch = false;
    WriteAheadLog::Replay(copy, [&](const WalRecord& r) {
      if (i >= written.size() || !(r.update == written[i]) || r.lsn != i) {
        mismatch = true;
      }
      i++;
    });
    EXPECT_FALSE(mismatch) << "trial " << trial;
    EXPECT_LE(i, written.size());
    std::remove(copy.c_str());
  }
}

// Per-shard replay partitions (recovery.h): the same WAL recovered into
// sharded stores at shard counts 1, 2 and 4 must reach bit-identical graph
// state — adjacency content AND iteration order — and therefore bit-identical
// recomputed results and history, matching the unsharded recovery exactly.
TEST_F(RecoveryTest, ShardedReplayIsBitIdenticalAcrossShardCounts) {
  StreamWorkload wl = SmallWorkload(21);
  {
    RisGraphOptions opt;
    opt.wal_path = wal_;
    RisGraph<> sys(wl.num_vertices, opt);
    sys.AddAlgorithm<Bfs>(0);
    sys.InitializeResults();
    for (const Update& u : wl.updates) {
      u.kind == UpdateKind::kInsertEdge
          ? sys.InsEdge(u.edge.src, u.edge.dst, u.edge.weight)
          : sys.DelEdge(u.edge.src, u.edge.dst, u.edge.weight);
    }
  }

  // Unsharded recovery is the oracle: results now, plus history and results
  // after a post-recovery update burst (history entries must match too).
  auto burst = [](auto& sys) {
    sys.InsEdge(1, 2, 1);
    sys.InsEdge(2, 3, 1);
    sys.DelEdge(1, 2, 1);
  };
  std::vector<uint64_t> expect_now, expect_hist;
  std::vector<std::tuple<VertexId, VertexId, Weight, uint64_t>> expect_adj;
  VersionId expect_version = 0;
  uint64_t expect_replayed = 0;
  {
    RisGraphOptions opt;
    RisGraph<> oracle(wl.num_vertices, opt);
    RecoveryResult r = RecoverRisGraph(oracle, ckpt_, wal_);
    expect_replayed = r.replayed_records;
    size_t bfs = oracle.AddAlgorithm<Bfs>(0);
    oracle.InitializeResults();
    VersionId base = oracle.GetCurrentVersion();
    burst(oracle);
    expect_version = oracle.GetCurrentVersion();
    for (VertexId v = 0; v < wl.num_vertices; ++v) {
      expect_now.push_back(oracle.GetValue(bfs, v));
      expect_hist.push_back(oracle.GetValue(bfs, base, v));
      oracle.store().ForEachOut(v, [&](VertexId d, Weight w, uint64_t c) {
        expect_adj.emplace_back(v, d, w, c);
      });
    }
  }
  ASSERT_GT(expect_replayed, 0u);

  for (uint32_t shards : {1u, 2u, 4u}) {
    SCOPED_TRACE("shards=" + std::to_string(shards));
    RisGraphOptions opt;
    opt.store.partition.num_shards = shards;
    RisGraph<ShardedGraphStore<>> rec(wl.num_vertices, opt);
    RecoveryResult r = RecoverRisGraph(rec, ckpt_, wal_);
    EXPECT_EQ(r.replayed_records, expect_replayed);
    size_t bfs = rec.AddAlgorithm<Bfs>(0);
    rec.InitializeResults();
    VersionId base = rec.GetCurrentVersion();
    burst(rec);
    EXPECT_EQ(rec.GetCurrentVersion(), expect_version);
    std::vector<std::tuple<VertexId, VertexId, Weight, uint64_t>> adj;
    for (VertexId v = 0; v < wl.num_vertices; ++v) {
      ASSERT_EQ(rec.GetValue(bfs, v), expect_now[v]) << v;
      ASSERT_EQ(rec.GetValue(bfs, base, v), expect_hist[v])
          << "history diverged at " << v;
      rec.store().ForEachOut(v, [&](VertexId d, Weight w, uint64_t c) {
        adj.emplace_back(v, d, w, c);
      });
    }
    ASSERT_EQ(adj, expect_adj) << "replayed adjacency (content or order)";
  }
}

// Vertex operations are replay barriers under sharding: id recycling and the
// isolation check must see edge effects in log order, at any shard count.
TEST_F(RecoveryTest, ShardedReplayHandlesVertexOpBarriers) {
  {
    RisGraphOptions opt;
    opt.wal_path = wal_;
    RisGraph<> sys(4, opt);
    sys.AddAlgorithm<Wcc>(0);
    sys.InitializeResults();
    sys.InsEdge(0, 1);
    VertexId fresh = kInvalidVertex;
    sys.InsVertex(&fresh);  // vertex 4
    sys.InsEdge(1, fresh);
    sys.DelEdge(0, 1);
    sys.InsEdge(2, 3);
  }
  for (uint32_t shards : {2u, 4u}) {
    SCOPED_TRACE("shards=" + std::to_string(shards));
    RisGraphOptions opt;
    opt.store.partition.num_shards = shards;
    RisGraph<ShardedGraphStore<>> rec(4, opt);
    RecoveryResult r = RecoverRisGraph(rec, ckpt_, wal_);
    EXPECT_EQ(r.replayed_records, 5u);
    size_t wcc = rec.AddAlgorithm<Wcc>(0);
    rec.InitializeResults();
    ASSERT_EQ(rec.store().NumVertices(), 5u);
    auto ref = ReferenceCompute<Wcc>(rec.store(), 0);
    for (VertexId v = 0; v < 5; ++v) {
      EXPECT_EQ(rec.GetValue(wcc, v), ref[v]) << v;
    }
    EXPECT_EQ(rec.store().EdgeCount(1, EdgeKey{4, 1}), 1u);
    EXPECT_EQ(rec.store().EdgeCount(0, EdgeKey{1, 1}), 0u);
  }
}

// Compaction under sharding: checkpoint the stitched view, truncate, recover
// into a different shard count.
TEST_F(RecoveryTest, ShardedCompactionRoundTripsAcrossShardCounts) {
  StreamWorkload wl = SmallWorkload(33);
  std::vector<uint64_t> expected;
  {
    RisGraphOptions opt;
    opt.wal_path = wal_;
    opt.store.partition.num_shards = 4;
    RisGraph<ShardedGraphStore<>> sys(wl.num_vertices, opt);
    size_t bfs = sys.AddAlgorithm<Bfs>(0);
    sys.InitializeResults();
    size_t half = wl.updates.size() / 2;
    for (size_t i = 0; i < half; ++i) {
      const Update& u = wl.updates[i];
      u.kind == UpdateKind::kInsertEdge
          ? sys.InsEdge(u.edge.src, u.edge.dst, u.edge.weight)
          : sys.DelEdge(u.edge.src, u.edge.dst, u.edge.weight);
    }
    ASSERT_TRUE(CompactWal(sys, ckpt_));
    for (size_t i = half; i < wl.updates.size(); ++i) {
      const Update& u = wl.updates[i];
      u.kind == UpdateKind::kInsertEdge
          ? sys.InsEdge(u.edge.src, u.edge.dst, u.edge.weight)
          : sys.DelEdge(u.edge.src, u.edge.dst, u.edge.weight);
    }
    for (VertexId v = 0; v < wl.num_vertices; ++v) {
      expected.push_back(sys.GetValue(bfs, v));
    }
  }
  RisGraphOptions opt;
  opt.store.partition.num_shards = 2;  // recover at a DIFFERENT shard count
  RisGraph<ShardedGraphStore<>> rec(0, opt);
  RecoveryResult r = RecoverRisGraph(rec, ckpt_, wal_);
  EXPECT_TRUE(r.checkpoint_loaded);
  size_t bfs = rec.AddAlgorithm<Bfs>(0);
  rec.InitializeResults();
  for (VertexId v = 0; v < wl.num_vertices; ++v) {
    ASSERT_EQ(rec.GetValue(bfs, v), expected[v]) << v;
  }
}

// Pluggable ownership must be durable: a system running under a locality
// PartitionMap persists it as the WAL's `.pmap` sidecar; recovery installs
// it before replay, so half-streams replay under the ownership that wrote
// them — and the recovered state still matches the unsharded oracle bit for
// bit (content AND iteration order), because ownership only moves halves.
TEST_F(RecoveryTest, LocalityMapPersistsAndRecoveryReplaysUnderIt) {
  StreamWorkload wl = SmallWorkload(45);
  // A non-trivial map built from the stream's own edges (SmallWorkload has
  // no preload, so the update stream is the warmup here).
  std::vector<Edge> warmup;
  for (const Update& u : wl.updates) warmup.push_back(u.edge);
  auto map = BuildLocalityMap(wl.num_vertices, 4, warmup);
  {
    bool differs = false;
    std::vector<uint32_t> table = map->Table();
    for (VertexId v = 0; v < table.size() && !differs; ++v) {
      differs = table[v] != static_cast<uint32_t>(v % 4);
    }
    ASSERT_TRUE(differs) << "locality map degenerated to modulo";
  }

  std::vector<uint64_t> expected;
  {
    RisGraphOptions opt;
    opt.wal_path = wal_;
    opt.store.partition.num_shards = 4;
    opt.store.partition.map = map;
    RisGraph<ShardedGraphStore<>> sys(wl.num_vertices, opt);
    size_t bfs = sys.AddAlgorithm<Bfs>(0);
    sys.InitializeResults();
    for (const Update& u : wl.updates) {
      u.kind == UpdateKind::kInsertEdge
          ? sys.InsEdge(u.edge.src, u.edge.dst, u.edge.weight)
          : sys.DelEdge(u.edge.src, u.edge.dst, u.edge.weight);
    }
    for (VertexId v = 0; v < wl.num_vertices; ++v) {
      expected.push_back(sys.GetValue(bfs, v));
    }
  }  // crash
  ASSERT_GT(FileSize(PartitionMapSidecarPath(wal_)), 0)
      << "table-backed map must persist beside the log";

  // Unsharded oracle for adjacency content and order.
  std::vector<std::tuple<VertexId, VertexId, Weight, uint64_t>> expect_adj;
  {
    RisGraph<> oracle(wl.num_vertices, {});
    RecoverRisGraph(oracle, ckpt_, wal_);
    for (VertexId v = 0; v < wl.num_vertices; ++v) {
      oracle.store().ForEachOut(v, [&](VertexId d, Weight w, uint64_t c) {
        expect_adj.emplace_back(v, d, w, c);
      });
    }
  }

  // Recover at the writer's shard count, with NO map configured: the
  // sidecar must be found and installed before replay.
  {
    RisGraphOptions opt;
    opt.wal_path = wal_;
    opt.store.partition.num_shards = 4;
    RisGraph<ShardedGraphStore<>> rec(wl.num_vertices, opt);
    ASSERT_EQ(rec.store().router().map(), nullptr);
    RecoveryResult r = RecoverRisGraph(rec, ckpt_, wal_);
    EXPECT_GT(r.replayed_records, 0u);
    ASSERT_NE(rec.store().router().map(), nullptr);
    EXPECT_EQ(rec.store().router().map()->Table(), map->Table());
    for (VertexId v = 0; v < 32; ++v) {
      ASSERT_EQ(rec.store().router().shard_of(v), map->OwnerOf(v, 4)) << v;
    }
    size_t bfs = rec.AddAlgorithm<Bfs>(0);
    rec.InitializeResults();
    std::vector<std::tuple<VertexId, VertexId, Weight, uint64_t>> adj;
    for (VertexId v = 0; v < wl.num_vertices; ++v) {
      ASSERT_EQ(rec.GetValue(bfs, v), expected[v]) << v;
      rec.store().ForEachOut(v, [&](VertexId d, Weight w, uint64_t c) {
        adj.emplace_back(v, d, w, c);
      });
    }
    ASSERT_EQ(adj, expect_adj) << "replayed adjacency under locality map";
  }

  // Recover at a DIFFERENT shard count: the sidecar is for 4 shards, so it
  // must be ignored — recovered state is ownership-invariant either way.
  {
    RisGraphOptions opt;
    opt.store.partition.num_shards = 2;
    RisGraph<ShardedGraphStore<>> rec(wl.num_vertices, opt);
    RecoverRisGraph(rec, ckpt_, wal_);
    EXPECT_EQ(rec.store().router().map(), nullptr)
        << "mismatched-shard-count sidecar must not install";
    size_t bfs = rec.AddAlgorithm<Bfs>(0);
    rec.InitializeResults();
    for (VertexId v = 0; v < wl.num_vertices; ++v) {
      ASSERT_EQ(rec.GetValue(bfs, v), expected[v]) << v;
    }
  }
}

// Compound media failure: a torn WAL tail AND a damaged `.pmap` sidecar in
// the same recovery. The two faults must be handled independently — the
// tail is truncated away with the dropped-record count reported, while the
// sidecar's CRC decides the map's fate: corrupt means fall back to default
// ownership (state is ownership-invariant, so replay stays correct); intact
// means keep the map even though the log was torn.
TEST_F(RecoveryTest, TornTailWithCorruptSidecarRecoversPrefix) {
  constexpr int kUpdates = 24;
  constexpr int kTornRecords = 3;
  std::vector<Update> updates;
  for (int i = 0; i < kUpdates; ++i) {
    updates.push_back(Update::InsertEdge(i % 32, (i * 7 + 1) % 32, 1 + i % 3));
  }
  std::vector<Edge> warmup;
  for (const Update& u : updates) warmup.push_back(u.edge);
  auto map = BuildLocalityMap(64, 4, warmup);
  {
    RisGraphOptions opt;
    opt.wal_path = wal_;
    opt.store.partition.num_shards = 4;
    opt.store.partition.map = map;
    RisGraph<ShardedGraphStore<>> sys(64, opt);
    sys.AddAlgorithm<Bfs>(0);
    sys.InitializeResults();
    for (const Update& u : updates) {
      sys.InsEdge(u.edge.src, u.edge.dst, u.edge.weight);
    }
  }  // crash

  // Fault 1: corrupt a record near the tail (CRC breaks; replay must stop
  // there and count the rest dropped).
  {
    std::FILE* f = std::fopen(wal_.c_str(), "rb+");
    ASSERT_NE(f, nullptr);
    std::fseek(f, (kUpdates - kTornRecords) * 37 + 12, SEEK_SET);
    std::fputc(0xFF, f);
    std::fclose(f);
  }
  // Fault 2: flip a byte inside the sidecar's entry table, keeping a
  // pristine copy to replay the intact-sidecar variant afterwards.
  std::string pmap_path = PartitionMapSidecarPath(wal_);
  std::vector<uint8_t> good_sidecar;
  {
    std::FILE* f = std::fopen(pmap_path.c_str(), "rb+");
    ASSERT_NE(f, nullptr);
    std::fseek(f, 0, SEEK_END);
    good_sidecar.resize(std::ftell(f));
    std::rewind(f);
    ASSERT_EQ(std::fread(good_sidecar.data(), 1, good_sidecar.size(), f),
              good_sidecar.size());
    std::fseek(f, 30, SEEK_SET);  // inside the entries
    std::fputc(good_sidecar[30] ^ 0x01, f);
    std::fclose(f);
  }

  // Reference: exactly the surviving prefix.
  std::vector<uint64_t> ref_values;
  {
    RisGraph<> ref(64);
    size_t bfs = ref.AddAlgorithm<Bfs>(0);
    ref.InitializeResults();
    for (int i = 0; i < kUpdates - kTornRecords; ++i) {
      ref.InsEdge(updates[i].edge.src, updates[i].edge.dst,
                  updates[i].edge.weight);
    }
    for (VertexId v = 0; v < 64; ++v) ref_values.push_back(ref.GetValue(bfs, v));
  }

  // Recovery #1: corrupt sidecar is rejected (no map installed), torn tail
  // truncated and reported; state is still the exact prefix.
  {
    RisGraphOptions opt;
    opt.store.partition.num_shards = 4;
    RisGraph<ShardedGraphStore<>> rec(64, opt);
    RecoveryResult r = RecoverRisGraph(rec, ckpt_, wal_);
    EXPECT_EQ(rec.store().router().map(), nullptr)
        << "CRC-broken sidecar must not install";
    EXPECT_EQ(r.replayed_records,
              static_cast<uint64_t>(kUpdates - kTornRecords));
    EXPECT_TRUE(r.tail_truncated);
    EXPECT_EQ(r.dropped_records, static_cast<uint64_t>(kTornRecords));
    EXPECT_EQ(r.dropped_bytes, static_cast<uint64_t>(kTornRecords) * 37);
    size_t bfs = rec.AddAlgorithm<Bfs>(0);
    rec.InitializeResults();
    for (VertexId v = 0; v < 64; ++v) {
      ASSERT_EQ(rec.GetValue(bfs, v), ref_values[v]) << v;
    }
  }

  // Recovery #2: restore the intact sidecar — the map IS kept even though
  // the log was torn (repaired by recovery #1, so the tail flags clear).
  {
    std::FILE* f = std::fopen(pmap_path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fwrite(good_sidecar.data(), 1, good_sidecar.size(), f),
              good_sidecar.size());
    std::fclose(f);
  }
  {
    RisGraphOptions opt;
    opt.store.partition.num_shards = 4;
    RisGraph<ShardedGraphStore<>> rec(64, opt);
    RecoveryResult r = RecoverRisGraph(rec, ckpt_, wal_);
    ASSERT_NE(rec.store().router().map(), nullptr);
    EXPECT_EQ(rec.store().router().map()->Table(), map->Table());
    EXPECT_EQ(r.replayed_records,
              static_cast<uint64_t>(kUpdates - kTornRecords));
    EXPECT_FALSE(r.tail_truncated);  // recovery #1 already repaired the log
    size_t bfs = rec.AddAlgorithm<Bfs>(0);
    rec.InitializeResults();
    for (VertexId v = 0; v < 64; ++v) {
      ASSERT_EQ(rec.GetValue(bfs, v), ref_values[v]) << v;
    }
  }
}

TEST_F(RecoveryTest, RecoveredStateMatchesOracleUnderMixedOps) {
  // Vertex ops interleaved with edge ops, full recovery cycle.
  {
    RisGraphOptions opt;
    opt.wal_path = wal_;
    RisGraph<> sys(4, opt);
    sys.AddAlgorithm<Wcc>(0);
    sys.InitializeResults();
    sys.InsEdge(0, 1);
    VertexId fresh = kInvalidVertex;
    sys.InsVertex(&fresh);
    sys.InsEdge(1, fresh);
    sys.DelEdge(0, 1);
    sys.InsEdge(2, 3);
  }
  RisGraphOptions opt;
  opt.wal_path = wal_;
  RisGraph<> recovered(4, opt);
  RecoveryResult r = RecoverRisGraph(recovered, ckpt_, wal_);
  EXPECT_EQ(r.replayed_records, 5u);
  size_t wcc = recovered.AddAlgorithm<Wcc>(0);
  recovered.InitializeResults();
  ASSERT_EQ(recovered.store().NumVertices(), 5u);
  auto ref = ReferenceCompute<Wcc>(recovered.store(), 0);
  for (VertexId v = 0; v < 5; ++v) {
    EXPECT_EQ(recovered.GetValue(wcc, v), ref[v]) << v;
  }
  EXPECT_EQ(recovered.store().EdgeCount(1, EdgeKey{4, 1}), 1u);
  EXPECT_EQ(recovered.store().EdgeCount(0, EdgeKey{1, 1}), 0u);
}

}  // namespace
}  // namespace risgraph
