#include <gtest/gtest.h>

#include <map>
#include <set>

#include "common/random.h"
#include "index/art_index.h"
#include "index/btree_index.h"
#include "index/hash_index.h"
#include "storage/adjacency_list.h"

namespace risgraph {
namespace {

using IaHash = AdjacencyList<HashIndex, false>;
using IoHash = AdjacencyList<HashIndex, true>;

TEST(AdjacencyList, InsertCreatesKeysAndCountsDuplicates) {
  IaHash adj;
  EXPECT_TRUE(adj.Insert(EdgeKey{1, 10}));
  EXPECT_FALSE(adj.Insert(EdgeKey{1, 10}));  // duplicate: count bump
  EXPECT_TRUE(adj.Insert(EdgeKey{1, 11}));   // same dst, new weight: new key
  EXPECT_EQ(adj.LiveKeys(), 2u);
  EXPECT_EQ(adj.TotalEdges(), 3u);
  EXPECT_EQ(adj.Count(EdgeKey{1, 10}), 2u);
  EXPECT_EQ(adj.Count(EdgeKey{1, 11}), 1u);
  EXPECT_EQ(adj.Count(EdgeKey{1, 12}), 0u);
}

TEST(AdjacencyList, DeleteDecrementsThenRemoves) {
  IaHash adj;
  adj.Insert(EdgeKey{2, 5});
  adj.Insert(EdgeKey{2, 5});
  EXPECT_EQ(adj.Delete(EdgeKey{2, 5}), DeleteResult::kDecremented);
  EXPECT_EQ(adj.Count(EdgeKey{2, 5}), 1u);
  EXPECT_EQ(adj.Delete(EdgeKey{2, 5}), DeleteResult::kRemoved);
  EXPECT_EQ(adj.Count(EdgeKey{2, 5}), 0u);
  EXPECT_EQ(adj.Delete(EdgeKey{2, 5}), DeleteResult::kNotFound);
  EXPECT_EQ(adj.LiveKeys(), 0u);
}

TEST(AdjacencyList, TombstonesAreRecycledOnDoubling) {
  IaHash adj;
  // Fill, delete half, keep inserting: capacity must be reused, and ForEach
  // must never yield tombstones.
  for (uint64_t i = 0; i < 64; ++i) adj.Insert(EdgeKey{i, 0});
  for (uint64_t i = 0; i < 64; i += 2) adj.Delete(EdgeKey{i, 0});
  for (uint64_t i = 100; i < 200; ++i) adj.Insert(EdgeKey{i, 0});
  EXPECT_EQ(adj.LiveKeys(), 32u + 100u);
  std::set<uint64_t> seen;
  adj.ForEach([&](VertexId dst, Weight, uint64_t count) {
    EXPECT_GT(count, 0u);
    seen.insert(dst);
  });
  EXPECT_EQ(seen.size(), 132u);
  EXPECT_FALSE(seen.contains(0));
  EXPECT_TRUE(seen.contains(1));
}

TEST(AdjacencyList, IndexAppearsAboveThreshold) {
  AdjacencyList<HashIndex, false> adj(/*index_threshold=*/16);
  for (uint64_t i = 0; i < 16; ++i) adj.Insert(EdgeKey{i, 0});
  EXPECT_FALSE(adj.HasIndex());
  adj.Insert(EdgeKey{16, 0});
  EXPECT_TRUE(adj.HasIndex());
  // Lookups and deletes keep working through the index.
  EXPECT_EQ(adj.Count(EdgeKey{3, 0}), 1u);
  EXPECT_EQ(adj.Delete(EdgeKey{3, 0}), DeleteResult::kRemoved);
  EXPECT_EQ(adj.Count(EdgeKey{3, 0}), 0u);
  for (uint64_t i = 17; i < 600; ++i) adj.Insert(EdgeKey{i, 0});
  EXPECT_EQ(adj.LiveKeys(), 599u);
  EXPECT_EQ(adj.Count(EdgeKey{599, 0}), 1u);
}

TEST(AdjacencyList, RawSlotsSkipTombstones) {
  IaHash adj;
  for (uint64_t i = 0; i < 10; ++i) adj.Insert(EdgeKey{i, 1});
  adj.Delete(EdgeKey{4, 1});
  uint64_t live = 0;
  for (size_t i = 0; i < adj.RawSize(); ++i) {
    if (adj.RawEntry(i).count > 0) live++;
  }
  EXPECT_EQ(live, 9u);
  EXPECT_TRUE(IaHash::kHasRawSlots);
  EXPECT_FALSE(IoHash::kHasRawSlots);
}

TEST(AdjacencyList, IndexOnlyModeStoresInIndex) {
  IoHash adj;
  adj.Insert(EdgeKey{7, 3});
  adj.Insert(EdgeKey{7, 3});
  adj.Insert(EdgeKey{8, 1});
  EXPECT_EQ(adj.LiveKeys(), 2u);
  EXPECT_EQ(adj.Count(EdgeKey{7, 3}), 2u);
  EXPECT_EQ(adj.RawSize(), 0u);  // no array in IO mode
  EXPECT_EQ(adj.Delete(EdgeKey{7, 3}), DeleteResult::kDecremented);
  EXPECT_EQ(adj.Delete(EdgeKey{7, 3}), DeleteResult::kRemoved);
  uint64_t total = 0;
  adj.ForEach([&](VertexId, Weight, uint64_t c) { total += c; });
  EXPECT_EQ(total, 1u);
}

template <typename T>
class AdjacencyListIndexTest : public ::testing::Test {};

using AdjIndexTypes = ::testing::Types<HashIndex, BTreeIndex, ArtIndex>;
TYPED_TEST_SUITE(AdjacencyListIndexTest, AdjIndexTypes);

// The same randomized differential test for all index back-ends, in both IA
// and IO modes, against a plain std::map model.
TYPED_TEST(AdjacencyListIndexTest, RandomizedDifferential) {
  AdjacencyList<TypeParam, false> ia(/*index_threshold=*/32);
  AdjacencyList<TypeParam, true> io;
  std::map<EdgeKey, uint64_t> model;
  Rng rng(777);
  for (int op = 0; op < 30000; ++op) {
    EdgeKey key{rng.NextBounded(200), rng.NextBounded(4)};
    if (rng.NextBounded(10) < 6) {
      ia.Insert(key);
      io.Insert(key);
      model[key]++;
    } else {
      DeleteResult ra = ia.Delete(key);
      DeleteResult ro = io.Delete(key);
      EXPECT_EQ(ra, ro);
      auto it = model.find(key);
      if (it == model.end()) {
        EXPECT_EQ(ra, DeleteResult::kNotFound);
      } else if (it->second > 1) {
        EXPECT_EQ(ra, DeleteResult::kDecremented);
        it->second--;
      } else {
        EXPECT_EQ(ra, DeleteResult::kRemoved);
        model.erase(it);
      }
    }
  }
  EXPECT_EQ(ia.LiveKeys(), model.size());
  EXPECT_EQ(io.LiveKeys(), model.size());
  uint64_t model_total = 0;
  for (auto& [k, c] : model) {
    EXPECT_EQ(ia.Count(k), c);
    EXPECT_EQ(io.Count(k), c);
    model_total += c;
  }
  EXPECT_EQ(ia.TotalEdges(), model_total);
  uint64_t foreach_total = 0;
  ia.ForEach([&](VertexId d, Weight w, uint64_t c) {
    EXPECT_EQ((model[EdgeKey{d, w}]), c);
    foreach_total += c;
  });
  EXPECT_EQ(foreach_total, model_total);
}

}  // namespace
}  // namespace risgraph
