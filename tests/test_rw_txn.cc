// Read-write transactions (paper Section 4): atomic, isolated bodies that
// interleave reads of the current results with writes, executed in the
// sequential lane.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "core/algorithm_api.h"
#include "core/reference.h"
#include "runtime/risgraph.h"
#include "runtime/service.h"

namespace risgraph {
namespace {

TEST(RwTxn, ReadsSeeOwnWrites) {
  RisGraph<> sys(8);
  size_t bfs = sys.AddAlgorithm<Bfs>(0);
  sys.InitializeResults();

  std::vector<uint64_t> observed;
  sys.ExecuteReadWrite([&](RwTxn& txn) {
    observed.push_back(txn.GetValue(bfs, 2));  // unreached
    txn.InsEdge(0, 1, 1);
    txn.InsEdge(1, 2, 1);
    observed.push_back(txn.GetValue(bfs, 2));  // now distance 2
    ASSERT_EQ(txn.EdgeCount(0, 1, 1), 1u);
  });
  EXPECT_EQ(observed[0], kInfWeight);
  EXPECT_EQ(observed[1], 2u);
  EXPECT_EQ(sys.GetValue(bfs, 2), 2u);
}

TEST(RwTxn, WholeBodyIsOneVersion) {
  RisGraph<> sys(8);
  size_t bfs = sys.AddAlgorithm<Bfs>(0);
  sys.InitializeResults();
  VersionId before = sys.GetCurrentVersion();
  VersionId ver = sys.ExecuteReadWrite([&](RwTxn& txn) {
    txn.InsEdge(0, 1, 1);
    txn.InsEdge(1, 2, 1);
    txn.InsEdge(2, 3, 1);
  });
  EXPECT_EQ(ver, before + 1);
  // The version's modification feed covers the whole transaction.
  auto modified = sys.GetModifiedVertices(bfs, ver);
  EXPECT_EQ(modified.size(), 3u);
  // Pre-transaction snapshot still answers with the old state.
  EXPECT_EQ(sys.GetValue(bfs, before, 3), kInfWeight);
  EXPECT_EQ(sys.GetValue(bfs, ver, 3), 3u);
}

TEST(RwTxn, ReadOnlyBodyCreatesNoVersion) {
  RisGraph<> sys(4);
  size_t bfs = sys.AddAlgorithm<Bfs>(0);
  sys.InitializeResults();
  sys.InsEdge(0, 1);
  VersionId before = sys.GetCurrentVersion();
  VersionId ver = sys.ExecuteReadWrite([&](RwTxn& txn) {
    EXPECT_EQ(txn.GetValue(bfs, 1), 1u);
    EXPECT_EQ(txn.GetParent(bfs, 1).parent, 0u);
  });
  EXPECT_EQ(ver, before);
}

TEST(RwTxn, ConditionalWriteUsesIsolatedRead) {
  RisGraph<> sys(8);
  size_t bfs = sys.AddAlgorithm<Bfs>(0);
  sys.InitializeResults();
  // Insert the edge only if 5 is currently unreachable — twice. The second
  // run must observe the first one's write and do nothing.
  auto body = [&](RwTxn& txn) {
    if (!Bfs::IsReached(txn.GetValue(bfs, 5))) txn.InsEdge(0, 5, 1);
  };
  sys.ExecuteReadWrite(body);
  sys.ExecuteReadWrite(body);
  EXPECT_EQ(sys.store().EdgeCount(0, EdgeKey{5, 1}), 1u);
}

TEST(RwTxn, ServiceRunsRwTxnsInSequentialLane) {
  RisGraph<> sys(64);
  size_t bfs = sys.AddAlgorithm<Bfs>(0);
  sys.InitializeResults();
  RisGraphService<> service(sys);
  constexpr int kSessions = 8;
  std::vector<Session*> sessions;
  for (int i = 0; i < kSessions; ++i) sessions.push_back(service.OpenSession());
  service.Start();

  // Every session races the same conditional insert: "connect root->target
  // only if target is unreachable". Isolation means exactly one write wins.
  constexpr VertexId kTarget = 42;
  std::atomic<int> writes{0};
  std::vector<std::thread> clients;
  for (int i = 0; i < kSessions; ++i) {
    clients.emplace_back([&, i] {
      sessions[i]->SubmitReadWrite([&](RwTxn& txn) {
        if (!Bfs::IsReached(txn.GetValue(bfs, kTarget))) {
          txn.InsEdge(0, kTarget, 1);
          writes.fetch_add(1);
        }
      });
    });
  }
  for (auto& t : clients) t.join();
  service.Stop();

  EXPECT_EQ(writes.load(), 1);
  EXPECT_EQ(sys.store().EdgeCount(0, EdgeKey{kTarget, 1}), 1u);
  EXPECT_EQ(sys.GetValue(bfs, kTarget), 1u);
}

TEST(RwTxn, MixedWithPlainUpdatesStaysCorrect) {
  RisGraph<> sys(64);
  size_t bfs = sys.AddAlgorithm<Bfs>(0);
  sys.InitializeResults();
  RisGraphService<> service(sys);
  Session* plain = service.OpenSession();
  Session* rw = service.OpenSession();
  service.Start();

  std::thread t1([&] {
    for (VertexId v = 1; v < 32; ++v) {
      plain->Submit(Update::InsertEdge(v - 1, v, 1));
    }
  });
  std::thread t2([&] {
    for (int i = 0; i < 16; ++i) {
      rw->SubmitReadWrite([&](RwTxn& txn) {
        // Shortcut edges guarded by a read of the current distance.
        uint64_t d = txn.GetValue(bfs, 31);
        if (d > 4) txn.InsEdge(0, 31, 1);
      });
    }
  });
  t1.join();
  t2.join();
  service.Stop();

  auto ref = ReferenceCompute<Bfs>(sys.store(), 0);
  for (VertexId v = 0; v < 64; ++v) {
    EXPECT_EQ(sys.GetValue(bfs, v), ref[v]) << v;
  }
  EXPECT_EQ(sys.GetValue(bfs, 31), 1u);
}

TEST(RwTxn, WalReplayCoversRwWrites) {
  std::string wal = ::testing::TempDir() + "risgraph_rw.wal";
  std::remove(wal.c_str());
  {
    RisGraphOptions opt;
    opt.wal_path = wal;
    RisGraph<> sys(8, opt);
    sys.AddAlgorithm<Bfs>(0);
    sys.InitializeResults();
    sys.ExecuteReadWrite([&](RwTxn& txn) {
      txn.InsEdge(0, 1, 1);
      txn.DelEdge(0, 1, 1);
      txn.InsEdge(0, 2, 1);
    });
  }
  std::vector<Update> replayed;
  WriteAheadLog::Replay(wal, [&](const WalRecord& r) {
    replayed.push_back(r.update);
  });
  ASSERT_EQ(replayed.size(), 3u);
  EXPECT_EQ(replayed[0], Update::InsertEdge(0, 1, 1));
  EXPECT_EQ(replayed[1], Update::DeleteEdge(0, 1, 1));
  EXPECT_EQ(replayed[2], Update::InsertEdge(0, 2, 1));
  std::remove(wal.c_str());
}

}  // namespace
}  // namespace risgraph
