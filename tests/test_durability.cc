// Decoupled durability end to end: fault-injected crash matrix (torn record,
// torn batch, crash mid-rotation, lost fsync) recovered at shard counts 1, 2
// and 4; fail-stop propagation from a dead WAL through the pipeline to both
// client transports; and the v2.2 durability-ack flow (kDurable frames,
// WaitDurable, watermark reporting) over a live RPC connection.
//
// Crash-matrix invariant (the tentpole contract): with a single blocking
// session submitting one update at a time, record LSN == submission index, so
// after a crash at any byte the recovered state must equal the reference
// state built from exactly the replayed prefix of the submission sequence —
// bit-identical (adjacency content AND order) at every shard count — and the
// replayed prefix must cover at least the durability watermark read before
// the crash. Nothing acked durable is ever lost; nothing beyond the log is
// ever invented.

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "core/algorithm_api.h"
#include "net/rpc_client.h"
#include "net/rpc_server.h"
#include "runtime/client.h"
#include "runtime/risgraph.h"
#include "runtime/service.h"
#include "shard/sharded_store.h"
#include "wal/recovery.h"
#include "wal/wal_backend.h"

namespace risgraph {
namespace {

constexpr uint64_t kVertices = 24;
constexpr size_t kRec = WriteAheadLog::kRecordBytes;

/// Deterministic update sequence: inserts with varied endpoints/weights plus
/// two deletes of edges inserted early, so any replayed prefix is a valid
/// history (each delete's target insert precedes it).
std::vector<Update> MakeUpdates(int n) {
  std::vector<Update> us;
  us.reserve(n);
  for (int i = 0; i < n; ++i) {
    if (i == 12) {
      us.push_back(Update::DeleteEdge(2, 15, 3));  // inserted at i == 2
    } else if (i == 20) {
      us.push_back(Update::DeleteEdge(4, 5, 2));  // inserted at i == 4
    } else {
      us.push_back(Update::InsertEdge(i % 24, (i * 7 + 1) % 24, 1 + i % 3));
    }
  }
  return us;
}

template <typename Sys>
void Apply(Sys& sys, const std::vector<Update>& us, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    const Update& u = us[i];
    u.kind == UpdateKind::kInsertEdge
        ? sys.InsEdge(u.edge.src, u.edge.dst, u.edge.weight)
        : sys.DelEdge(u.edge.src, u.edge.dst, u.edge.weight);
  }
}

bool WaitFor(const std::function<bool()>& pred, int64_t timeout_micros) {
  auto deadline = std::chrono::steady_clock::now() +
                  std::chrono::microseconds(timeout_micros);
  while (!pred()) {
    if (std::chrono::steady_clock::now() > deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return true;
}

class DurabilityTest : public ::testing::Test {
 protected:
  void SetUp() override {
    base_ = ::testing::TempDir() + "risgraph_dur_" +
            std::to_string(reinterpret_cast<uintptr_t>(this));
    wal_ = base_ + ".wal";
    ckpt_ = base_ + ".ckpt";
    RemoveFiles();
  }
  void TearDown() override { RemoveFiles(); }

  void RemoveFiles() {
    std::remove(wal_.c_str());
    std::remove(ckpt_.c_str());
    std::remove(PartitionMapSidecarPath(wal_).c_str());
    for (int i = 0; i < 64; ++i) {
      char suffix[16];
      std::snprintf(suffix, sizeof(suffix), ".%04d", i);
      std::remove((wal_ + suffix).c_str());
    }
  }

  /// The matrix leg: recover the materialized log at shard counts 1, 2, 4
  /// and require exactly `expect_replayed` records, with graph state
  /// bit-identical (results + adjacency content and order) to a reference
  /// built from that exact submission prefix.
  void VerifyPrefixRecovery(const std::vector<Update>& updates,
                            uint64_t expect_replayed) {
    std::vector<uint64_t> ref_values;
    std::vector<std::tuple<VertexId, VertexId, Weight, uint64_t>> ref_adj;
    {
      RisGraph<> ref(kVertices);
      size_t bfs = ref.AddAlgorithm<Bfs>(0);
      ref.InitializeResults();
      Apply(ref, updates, expect_replayed);
      for (VertexId v = 0; v < kVertices; ++v) {
        ref_values.push_back(ref.GetValue(bfs, v));
        ref.store().ForEachOut(v, [&](VertexId d, Weight w, uint64_t c) {
          ref_adj.emplace_back(v, d, w, c);
        });
      }
    }
    for (uint32_t shards : {1u, 2u, 4u}) {
      SCOPED_TRACE("shards=" + std::to_string(shards));
      RisGraphOptions opt;
      opt.store.partition.num_shards = shards;
      RisGraph<ShardedGraphStore<>> rec(kVertices, opt);
      RecoveryResult r = RecoverRisGraph(rec, ckpt_, wal_);
      ASSERT_EQ(r.replayed_records, expect_replayed);
      size_t bfs = rec.AddAlgorithm<Bfs>(0);
      rec.InitializeResults();
      std::vector<std::tuple<VertexId, VertexId, Weight, uint64_t>> adj;
      for (VertexId v = 0; v < kVertices; ++v) {
        ASSERT_EQ(rec.GetValue(bfs, v), ref_values[v]) << v;
        rec.store().ForEachOut(v, [&](VertexId d, Weight w, uint64_t c) {
          adj.emplace_back(v, d, w, c);
        });
      }
      ASSERT_EQ(adj, ref_adj) << "recovered adjacency (content or order)";
    }
  }

  std::string base_, wal_, ckpt_;
};

//===--- Crash matrix -------------------------------------------------------===//

TEST_F(DurabilityTest, CrashTornRecordRecoversDurablePrefix) {
  std::vector<Update> updates = MakeUpdates(32);
  FaultInjectingWalBackend::Config cfg;
  cfg.crash_at_bytes = 17 * kRec + 13;  // record 17 tears mid-payload
  FaultInjectingWalBackend backend(cfg);
  {
    RisGraphOptions opt;
    opt.wal_path = wal_;
    opt.wal_backend = &backend;
    RisGraph<> sys(kVertices, opt);
    sys.AddAlgorithm<Bfs>(0);
    sys.InitializeResults();
    Apply(sys, updates, updates.size());  // tail ops fail their WAL flush
    EXPECT_EQ(sys.WalStatus(), Status::kWalError);
    EXPECT_EQ(sys.wal().DurableUpto(), 17u);  // fail-stop froze the watermark
  }
  ASSERT_TRUE(backend.Materialize(/*keep_unsynced=*/true));
  VerifyPrefixRecovery(updates, 17);
}

TEST_F(DurabilityTest, CrashMidBatchTearsAtRecordBoundary) {
  // A transaction is one group-committed chunk; the log has no txn markers,
  // so a crash inside the chunk tears at a *record* boundary: recovery keeps
  // the intact per-record prefix of the batch (record-granular durability —
  // txn atomicity across crashes is explicitly not claimed by the format).
  std::vector<Update> updates = MakeUpdates(32);
  FaultInjectingWalBackend::Config cfg;
  cfg.crash_at_bytes = 13 * kRec + 5;  // 7 of the txn's 10 records survive
  FaultInjectingWalBackend backend(cfg);
  {
    RisGraphOptions opt;
    opt.wal_path = wal_;
    opt.wal_backend = &backend;
    RisGraph<> sys(kVertices, opt);
    sys.AddAlgorithm<Bfs>(0);
    sys.InitializeResults();
    Apply(sys, updates, 6);  // records 0..5, one flush each
    std::vector<Update> txn(updates.begin() + 6, updates.begin() + 16);
    sys.TxnUpdates(txn);  // records 6..15 in ONE chunk; crashes mid-chunk
    EXPECT_EQ(sys.WalStatus(), Status::kWalError);
    EXPECT_EQ(sys.wal().DurableUpto(), 6u);  // the torn batch never acked
  }
  ASSERT_TRUE(backend.Materialize(/*keep_unsynced=*/true));
  VerifyPrefixRecovery(updates, 13);
}

TEST_F(DurabilityTest, CrashMidRotationKeepsChainConsistent) {
  // Crash lands exactly on a segment boundary: the new segment was created
  // but never written. Replay must walk the chain through the empty tip.
  std::vector<Update> updates = MakeUpdates(32);
  FaultInjectingWalBackend::Config cfg;
  cfg.crash_at_bytes = 8 * kRec;  // dies opening record 8's fresh segment
  FaultInjectingWalBackend backend(cfg);
  {
    RisGraphOptions opt;
    opt.wal_path = wal_;
    opt.wal_backend = &backend;
    opt.wal_segment_bytes = 4 * kRec;  // rotate every four records
    RisGraph<> sys(kVertices, opt);
    sys.AddAlgorithm<Bfs>(0);
    sys.InitializeResults();
    Apply(sys, updates, updates.size());
    EXPECT_EQ(sys.WalStatus(), Status::kWalError);
    EXPECT_EQ(sys.wal().DurableUpto(), 8u);
  }
  ASSERT_TRUE(backend.Materialize(/*keep_unsynced=*/true));
  VerifyPrefixRecovery(updates, 8);
}

TEST_F(DurabilityTest, CrashLostFsyncKeepsExactlySyncedPrefix) {
  // Power loss drops the page cache: with fsync-per-flush, the durability
  // watermark counts only synced records, and recovery replays *exactly*
  // that many — the record written-but-not-synced vanishes.
  std::vector<Update> updates = MakeUpdates(32);
  FaultInjectingWalBackend::Config cfg;
  cfg.fail_sync_after = 10;  // syncs 0..9 land; record 10 is written, lost
  FaultInjectingWalBackend backend(cfg);
  uint64_t durable = 0;
  {
    RisGraphOptions opt;
    opt.wal_path = wal_;
    opt.wal_backend = &backend;
    opt.wal_fsync = true;
    RisGraph<> sys(kVertices, opt);
    sys.AddAlgorithm<Bfs>(0);
    sys.InitializeResults();
    Apply(sys, updates, updates.size());
    EXPECT_EQ(sys.WalStatus(), Status::kWalError);
    durable = sys.wal().DurableUpto();
    EXPECT_EQ(durable, 10u);
  }
  ASSERT_TRUE(backend.Materialize(/*keep_unsynced=*/false));
  VerifyPrefixRecovery(updates, durable);
}

//===--- Decoupled pipeline: exec-acked but lost tail -----------------------===//

TEST_F(DurabilityTest, DecoupledCrashLosesOnlyUpdatesNeverAckedDurable) {
  // Async group commit: execution acks race ahead of the flusher. A crash
  // may lose exec-acked updates — but never one whose durability was acked
  // (replayed >= the watermark), and recovery is still an exact prefix.
  std::vector<Update> updates = MakeUpdates(40);
  FaultInjectingWalBackend::Config cfg;
  cfg.crash_at_bytes = 23 * kRec + 11;
  FaultInjectingWalBackend backend(cfg);
  uint64_t durable = 0;
  {
    RisGraphOptions opt;
    opt.wal_path = wal_;
    opt.wal_backend = &backend;
    RisGraph<> sys(kVertices, opt);
    sys.AddAlgorithm<Bfs>(0);
    sys.InitializeResults();
    ServiceOptions so;
    so.async_durability = true;
    so.wal_flush_interval_micros = 500;
    RisGraphService<> service(sys, so);
    service.Start();
    {
      SessionClient<> client(sys, service.pipeline());
      for (const Update& u : updates) client.Submit(u);  // exec acks only
      // All 40 records are appended and sealed; the flusher must cross the
      // fault point within a few intervals.
      ASSERT_TRUE(WaitFor([&] { return service.pipeline().wal_failed(); },
                          5'000'000));
      durable = sys.wal().DurableUpto();
      EXPECT_LT(durable, updates.size());  // the crash beat the flusher

      // Fail-stop visible on every client surface, promptly.
      EXPECT_TRUE(client.wal_failed());
      EXPECT_FALSE(client.WaitDurable(0, 200'000));
      EXPECT_EQ(client.SubmitAsync(updates[0]), ClientStatus::kWalError);
      EXPECT_EQ(client.Submit(updates[0]), kInvalidVersion);
    }
    service.Stop();
  }
  ASSERT_TRUE(backend.Materialize(/*keep_unsynced=*/true));
  uint64_t replayed = WriteAheadLog::Replay(wal_, [](const WalRecord&) {});
  EXPECT_GE(replayed, durable);  // durable prefix always survives
  EXPECT_LE(replayed, updates.size());
  VerifyPrefixRecovery(updates, replayed);
}

TEST_F(DurabilityTest, DecoupledServiceAcksExecutionThenDurability) {
  // Happy path: exec ack first, durability follows; both watermarks land.
  RisGraphOptions opt;
  opt.wal_path = wal_;
  RisGraph<> sys(kVertices, opt);
  sys.AddAlgorithm<Bfs>(0);
  sys.InitializeResults();
  ServiceOptions so;
  so.async_durability = true;
  so.wal_flush_interval_micros = 500;
  RisGraphService<> service(sys, so);
  service.Start();
  {
    SessionClient<> client(sys, service.pipeline());
    VersionId ver = client.Submit(Update::InsertEdge(0, 1, 1));
    ASSERT_NE(ver, kInvalidVersion);
    EXPECT_TRUE(client.WaitDurable(ver, 5'000'000));
    EXPECT_GE(client.DurableThrough(), ver);
    EXPECT_GE(sys.wal().DurableUpto(), 1u);
    EXPECT_FALSE(client.wal_failed());
  }
  service.Stop();
}

//===--- RPC tier: v2.2 durability acks and fail-stop -----------------------===//

class DurabilityRpcTest : public ::testing::Test {
 protected:
  void SetUp() override {
    base_ = ::testing::TempDir() + "risgraph_durrpc_" +
            std::to_string(reinterpret_cast<uintptr_t>(this));
    wal_ = base_ + ".wal";
    std::remove(wal_.c_str());
    socket_path_ = "/tmp/risgraph_dur_" +
                   std::to_string(reinterpret_cast<uintptr_t>(this)) + ".sock";
  }

  void Boot(bool with_wal, ServiceOptions so = {},
            WalBackend* backend = nullptr) {
    RisGraphOptions opt;
    if (with_wal) opt.wal_path = wal_;
    opt.wal_backend = backend;
    sys_ = std::make_unique<RisGraph<>>(64, opt);
    bfs_ = sys_->AddAlgorithm<Bfs>(0);
    sys_->InitializeResults();
    service_ = std::make_unique<RisGraphService<>>(*sys_, so);
    server_ = std::make_unique<RpcServer>(*sys_, *service_, socket_path_);
    ASSERT_TRUE(server_->Start(8));
    service_->Start();
  }

  void TearDown() override {
    if (server_) server_->Stop();
    if (service_) service_->Stop();
    sys_.reset();  // the WAL (and its backend_ pointer) dies here, so the
                   // injected backend below must still be alive
    fault_.reset();
    std::remove(wal_.c_str());
  }

  std::string base_, wal_, socket_path_;
  std::unique_ptr<RisGraph<>> sys_;
  size_t bfs_ = 0;
  std::unique_ptr<RisGraphService<>> service_;
  std::unique_ptr<RpcServer> server_;
  // Owned by the fixture, not the test body: WalBackend must outlive the
  // WriteAheadLog that borrows it (the log's Close() releases the backend).
  std::unique_ptr<FaultInjectingWalBackend> fault_;
};

TEST_F(DurabilityRpcTest, DurabilityAcksReachClient) {
  ServiceOptions so;
  so.async_durability = true;
  so.wal_flush_interval_micros = 500;
  Boot(/*with_wal=*/true, so);

  RpcClient client;
  ASSERT_TRUE(client.Connect(socket_path_));
  EXPECT_EQ(client.protocol_version(), rpc::kProtocolVersion);
  EXPECT_EQ(client.DurableThrough(), 0u);

  for (int i = 0; i < 8; ++i) {
    ASSERT_NE(client.InsEdge(i, i + 1, 1), kInvalidVersion);
  }
  EXPECT_TRUE(client.WaitDurable(0, 5'000'000));
  EXPECT_GT(client.durable_frames_received(), 0u);
  EXPECT_GT(client.DurableThrough(), 0u);
  EXPECT_GT(server_->durability_acks_pushed(), 0u);
  EXPECT_FALSE(client.wal_failed());
  EXPECT_GE(sys_->wal().DurableUpto(), 8u);
  client.Close();
}

TEST_F(DurabilityRpcTest, WaitDurableCoversPipelinedLane) {
  // Pipelined acks mean "queued", not "durable" — but WaitDurable's kFlush
  // anchor drains the lane, so its ack covers everything sent before it.
  ServiceOptions so;
  so.async_durability = true;
  so.wal_flush_interval_micros = 500;
  Boot(/*with_wal=*/true, so);

  RpcClient client;
  ASSERT_TRUE(client.Connect(socket_path_));
  std::vector<Update> updates;
  for (int i = 0; i < 48; ++i) {
    updates.push_back(Update::InsertEdge(i % 32, (i * 5 + 1) % 32, 1));
  }
  ASSERT_EQ(client.SubmitBatch(updates.data(), updates.size()),
            updates.size());
  ASSERT_TRUE(client.WaitAcks());
  EXPECT_TRUE(client.WaitDurable(0, 5'000'000));
  EXPECT_GE(sys_->wal().DurableUpto(), updates.size());
  client.Close();
}

TEST_F(DurabilityRpcTest, NoWalDurabilityDegeneratesToExecution) {
  // Servers without a WAL still speak v2.2: "durable" means "executed".
  ServiceOptions so;
  so.async_durability = true;
  Boot(/*with_wal=*/false, so);

  RpcClient client;
  ASSERT_TRUE(client.Connect(socket_path_));
  // Root-reachable edge so results change and the version actually bumps;
  // a second anchor after that epoch fully sealed reports the watermark
  // (DurableThrough is reporting-grade and may lag one epoch).
  ASSERT_NE(client.InsEdge(0, 1, 1), kInvalidVersion);
  ASSERT_NE(client.InsEdge(1, 2, 1), kInvalidVersion);
  EXPECT_TRUE(client.WaitDurable(0, 5'000'000));
  EXPECT_GT(client.DurableThrough(), 0u);
  EXPECT_FALSE(client.wal_failed());
  client.Close();
}

TEST_F(DurabilityRpcTest, WalFailStopSurfacesAsWalErrorAndReadsKeepWorking) {
  FaultInjectingWalBackend::Config cfg;
  cfg.fail_write_at_bytes = 3 * kRec;  // dies on the fourth record
  fault_ = std::make_unique<FaultInjectingWalBackend>(cfg);
  ServiceOptions so;
  so.async_durability = true;
  so.wal_flush_interval_micros = 500;
  Boot(/*with_wal=*/true, so, fault_.get());

  RpcClient client;
  ASSERT_TRUE(client.Connect(socket_path_));
  bool saw_reject = false;
  for (int i = 0; i < 100 && !saw_reject; ++i) {
    saw_reject = client.InsEdge(i % 32, (i % 32) + 1, 1) == kInvalidVersion;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_TRUE(saw_reject) << "fail-stop never surfaced on the blocking lane";
  EXPECT_TRUE(client.wal_failed());  // latched off the kWalError response
  EXPECT_FALSE(client.WaitDurable(0, 500'000));

  // Fail-stop kills mutations, not reads.
  EXPECT_TRUE(client.Ping());
  VersionId ver = kInvalidVersion;
  EXPECT_TRUE(client.GetCurrentVersion(&ver));
  EXPECT_NE(ver, kInvalidVersion);

  // The in-process surface over the same pipeline agrees.
  SessionClient<> local(*sys_, service_->pipeline());
  EXPECT_TRUE(local.wal_failed());
  EXPECT_EQ(local.SubmitAsync(Update::InsertEdge(1, 2, 1)),
            ClientStatus::kWalError);
  client.Close();
}

}  // namespace
}  // namespace risgraph
