// The dense-bitmap frontier (EngineOptions::use_dense_frontier) is an
// ablation of localized data access: it must produce results identical to
// the sparse path on every algorithm — only its per-iteration costs differ.

#include <gtest/gtest.h>

#include <string>

#include "core/algorithm_api.h"
#include "core/incremental_engine.h"
#include "core/reference.h"
#include "storage/graph_store.h"
#include "workload/rmat.h"
#include "workload/update_stream.h"

namespace risgraph {
namespace {

template <typename Algo>
void RunDenseVsSparse(uint64_t seed) {
  RmatParams rp;
  rp.scale = 8;
  rp.num_edges = 1500;
  rp.max_weight = 8;
  rp.seed = seed;
  auto edges = GenerateRmat(rp);
  StreamOptions so;
  so.preload_fraction = 0.6;
  so.seed = seed + 3;
  StreamWorkload wl = BuildStream(uint64_t{1} << rp.scale, edges, so);

  DefaultGraphStore sparse_store(wl.num_vertices);
  DefaultGraphStore dense_store(wl.num_vertices);
  for (const Edge& e : wl.preload) {
    sparse_store.InsertEdge(e);
    dense_store.InsertEdge(e);
  }
  EngineOptions dense_opt;
  dense_opt.use_dense_frontier = true;
  IncrementalEngine<Algo> sparse(sparse_store, 0);
  IncrementalEngine<Algo> dense(dense_store, 0, dense_opt);

  size_t step = 0;
  for (const Update& u : wl.updates) {
    if (u.kind == UpdateKind::kInsertEdge) {
      sparse_store.InsertEdge(u.edge);
      sparse.OnInsert(u.edge);
      dense_store.InsertEdge(u.edge);
      dense.OnInsert(u.edge);
    } else {
      DeleteResult r1 = sparse_store.DeleteEdge(u.edge);
      sparse.OnDelete(u.edge, r1);
      DeleteResult r2 = dense_store.DeleteEdge(u.edge);
      dense.OnDelete(u.edge, r2);
    }
    if (++step % 100 == 0 || step == wl.updates.size()) {
      auto ref = ReferenceCompute<Algo>(dense_store, 0);
      for (VertexId v = 0; v < wl.num_vertices; ++v) {
        ASSERT_EQ(dense.Value(v), ref[v])
            << Algo::Name() << " dense v=" << v << " step=" << step;
        ASSERT_EQ(sparse.Value(v), dense.Value(v))
            << Algo::Name() << " sparse/dense divergence v=" << v;
      }
    }
    if (step >= 400) break;
  }
}

class DenseFrontierTest : public ::testing::TestWithParam<std::string> {};

TEST_P(DenseFrontierTest, MatchesSparseAndRecompute) {
  const std::string& algo = GetParam();
  if (algo == "bfs") {
    RunDenseVsSparse<Bfs>(31);
  } else if (algo == "sssp") {
    RunDenseVsSparse<Sssp>(32);
  } else if (algo == "sswp") {
    RunDenseVsSparse<Sswp>(33);
  } else {
    RunDenseVsSparse<Wcc>(34);
  }
}

INSTANTIATE_TEST_SUITE_P(AllAlgos, DenseFrontierTest,
                         ::testing::Values("bfs", "sssp", "sswp", "wcc"),
                         [](const auto& info) { return info.param; });

TEST(DenseFrontier, ResetComputesFromScratch) {
  DefaultGraphStore store(8);
  for (VertexId v = 0; v + 1 < 8; ++v) store.InsertEdge(Edge{v, v + 1, 1});
  EngineOptions opt;
  opt.use_dense_frontier = true;
  IncrementalEngine<Bfs> engine(store, 0, opt);
  for (VertexId v = 0; v < 8; ++v) EXPECT_EQ(engine.Value(v), v);
}

TEST(DenseFrontier, RecordsPushSamples) {
  DefaultGraphStore store(64);
  for (VertexId v = 0; v + 1 < 64; ++v) store.InsertEdge(Edge{v, v + 1, 1});
  EngineOptions opt;
  opt.use_dense_frontier = true;
  opt.record_push_samples = true;
  IncrementalEngine<Bfs> engine(store, 0, opt);
  // The chain forces one push iteration per depth level.
  EXPECT_GE(engine.push_samples().size(), 62u);
}

}  // namespace
}  // namespace risgraph
