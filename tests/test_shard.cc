// The shard layer (src/shard/): router verdicts, partition-aware store
// halves, the stitched coordinator view, and the property the whole design
// hangs on — shard-count invariance: the same workload driven at
// ingest_shards 1, 2 and 4 must produce bit-identical results, parents,
// versions and safe/unsafe classification verdicts (single-threaded pool:
// the only nondeterminism the baseline itself has is pool interleaving).

#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/random.h"
#include "core/algorithm_api.h"
#include "core/reference.h"
#include "ingest/epoch_pipeline.h"
#include "runtime/client.h"
#include "shard/partition_map.h"
#include "shard/shard_router.h"
#include "shard/sharded_store.h"
#include "workload/rmat.h"
#include "workload/update_stream.h"

namespace risgraph {
namespace {

TEST(ShardRouterTest, OwnershipAndRouting) {
  ShardRouter router(4, /*keep_transpose=*/true);
  EXPECT_EQ(router.num_shards(), 4u);
  EXPECT_TRUE(router.Partitioned());
  EXPECT_EQ(router.shard_of(0), 0u);
  EXPECT_EQ(router.shard_of(7), 3u);

  // Local: src and dst resolve to one partition.
  EXPECT_EQ(router.Route(Update::InsertEdge(4, 8)), 0u);
  EXPECT_EQ(router.Route(Update::DeleteEdge(5, 13)), 1u);
  // Cross: the out-half and in-half live on different partitions.
  EXPECT_EQ(router.Route(Update::InsertEdge(4, 5)), ShardRouter::kCrossShard);
  // Vertex operations grow every partition: always cross.
  EXPECT_EQ(router.Route(Update::InsertVertex(0)), ShardRouter::kCrossShard);
  EXPECT_EQ(router.Route(Update::DeleteVertex(3)), ShardRouter::kCrossShard);

  // No transpose: only the out-half exists, so locality is OwnerOf(src).
  ShardRouter no_transpose(4, /*keep_transpose=*/false);
  EXPECT_EQ(no_transpose.Route(Update::InsertEdge(4, 5)), 0u);

  // N = 1 degenerates to a single always-local shard.
  ShardRouter single(1, true);
  EXPECT_FALSE(single.Partitioned());
  EXPECT_EQ(single.Route(Update::InsertEdge(123, 456)), 0u);
}

TEST(PartitionMapTest, TableMapResolvesAndFallsBackToModulo) {
  // Table covering vertices 0..5 with a deliberately non-modulo layout.
  TablePartitionMap map({0, 0, 1, 1, 0, 1}, /*built_for_shards=*/2);
  EXPECT_EQ(map.OwnerOf(0, 2), 0u);
  EXPECT_EQ(map.OwnerOf(1, 2), 0u);  // modulo would say 1
  EXPECT_EQ(map.OwnerOf(2, 2), 1u);  // modulo would say 0
  EXPECT_EQ(map.OwnerOf(5, 2), 1u);
  // Past the table: modulo fallback keeps the map total.
  EXPECT_EQ(map.OwnerOf(7, 2), 1u);
  EXPECT_EQ(map.OwnerOf(100, 2), 0u);
  // Consulted at a smaller shard count than built for: entries naming an
  // out-of-range shard fall back to modulo, so OwnerOf stays in range.
  TablePartitionMap wide({3, 3, 3}, 4);
  EXPECT_EQ(wide.OwnerOf(0, 2), 0u);
  EXPECT_EQ(wide.OwnerOf(1, 2), 1u);

  // A VertexPartition carrying the map resolves through it.
  auto shared = std::make_shared<TablePartitionMap>(
      std::vector<uint32_t>{0, 0, 1, 1, 0, 1}, 2u);
  VertexPartition p{1, 2, shared};
  EXPECT_TRUE(p.Owns(2));
  EXPECT_FALSE(p.Owns(1));
  // num_shards <= 1 short-circuits before the map (unpartitioned is free).
  VertexPartition single{0, 1, shared};
  EXPECT_EQ(single.OwnerOf(2), 0u);
}

TEST(PartitionMapTest, RouterHonorsInstalledMap) {
  // Map that puts 0..3 on shard 0 and 4..7 on shard 1 (range partitioning —
  // the opposite of modulo's round-robin).
  auto map = std::make_shared<TablePartitionMap>(
      std::vector<uint32_t>{0, 0, 0, 0, 1, 1, 1, 1}, 2u);
  ShardRouter router(2, /*keep_transpose=*/true, map);
  EXPECT_EQ(router.shard_of(1), 0u);
  EXPECT_EQ(router.shard_of(5), 1u);
  // 0 -> 1 is modulo-cross but map-local; 3 -> 4 straddles the range split.
  EXPECT_EQ(router.Route(Update::InsertEdge(0, 1)), 0u);
  EXPECT_EQ(router.Route(Update::InsertEdge(3, 4)), ShardRouter::kCrossShard);
  // OwnershipOf must carry the map so stores and engines agree with routing.
  VertexPartition owned = router.OwnershipOf(1);
  EXPECT_EQ(owned.map, map);
  EXPECT_TRUE(owned.Owns(6));
  EXPECT_FALSE(owned.Owns(2));
  // Half placement follows the map too.
  std::vector<uint32_t> owners;
  router.ForEachOwningShard(Edge{3, 4, 1}, [&](uint32_t s) {
    owners.push_back(s);
  });
  EXPECT_EQ(owners, (std::vector<uint32_t>{0, 1}));
}

TEST(PartitionMapTest, GreedyAssignerCutsEdgesDeterministicallyAndBalances) {
  RmatParams rmat;
  rmat.scale = 10;
  rmat.num_edges = 16000;
  rmat.seed = 5;
  std::vector<Edge> warmup = GenerateRmat(rmat);
  const uint64_t n_vertices = uint64_t{1} << rmat.scale;
  const uint32_t n_shards = 4;

  LocalityMapOptions lopt;
  auto map = BuildLocalityMap(n_vertices, n_shards, warmup, lopt);
  ASSERT_EQ(map->built_for_shards(), n_shards);
  ASSERT_EQ(map->table_size(), n_vertices);

  // Deterministic: same inputs, same table.
  auto again = BuildLocalityMap(n_vertices, n_shards, warmup, lopt);
  EXPECT_EQ(map->Table(), again->Table());

  auto cut_fraction = [&](auto owner_of) {
    uint64_t cut = 0;
    for (const Edge& e : warmup) {
      if (owner_of(e.src) != owner_of(e.dst)) cut++;
    }
    return static_cast<double>(cut) / static_cast<double>(warmup.size());
  };
  double modulo_cut = cut_fraction(
      [&](VertexId v) { return static_cast<uint32_t>(v % n_shards); });
  double locality_cut =
      cut_fraction([&](VertexId v) { return map->OwnerOf(v, n_shards); });
  // Power-law + modulo is the worst case (~(N-1)/N); the greedy assigner
  // must beat it by a wide margin on its own warmup.
  EXPECT_GT(modulo_cut, 0.6);
  EXPECT_LT(locality_cut, modulo_cut / 2);

  // Balance: no shard exceeds the slack-scaled fair share of seen vertices.
  std::vector<uint64_t> load(n_shards, 0);
  std::vector<uint8_t> seen(n_vertices, 0);
  for (const Edge& e : warmup) {
    seen[e.src] = 1;
    seen[e.dst] = 1;
  }
  uint64_t n_seen = 0;
  for (VertexId v = 0; v < n_vertices; ++v) {
    if (seen[v]) {
      n_seen++;
      load[map->OwnerOf(v, n_shards)]++;
    }
  }
  double capacity = lopt.capacity_slack *
                    static_cast<double>((n_seen + n_shards - 1) / n_shards);
  for (uint32_t s = 0; s < n_shards; ++s) {
    EXPECT_LE(static_cast<double>(load[s]), capacity + 1.0) << "shard " << s;
  }
}

TEST(PartitionMapTest, SidecarRoundTripsAndRejectsCorruption) {
  std::string path = testing::TempDir() + "/pmap_roundtrip.pmap";
  auto map = std::make_shared<TablePartitionMap>(
      std::vector<uint32_t>{2, 0, 1, 2, 1, 0, 0, 3}, 4u);
  ASSERT_TRUE(SavePartitionMap(*map, 4, path));

  PartitionMapFile loaded = LoadPartitionMap(path);
  ASSERT_TRUE(loaded.ok);
  EXPECT_EQ(loaded.num_shards, 4u);
  ASSERT_NE(loaded.map, nullptr);
  EXPECT_EQ(loaded.map->Table(), map->Table());

  // Pure-function maps persist nothing (and must not clobber a sidecar).
  ModuloPartitionMap modulo;
  std::string none = testing::TempDir() + "/pmap_none.pmap";
  EXPECT_TRUE(SavePartitionMap(modulo, 4, none));
  EXPECT_FALSE(LoadPartitionMap(none).ok);

  // Flip one payload byte: the CRC must reject the file.
  {
    std::FILE* f = std::fopen(path.c_str(), "rb+");
    ASSERT_NE(f, nullptr);
    std::fseek(f, 20, SEEK_SET);
    int c = std::fgetc(f);
    std::fseek(f, 20, SEEK_SET);
    std::fputc(c ^ 0x40, f);
    std::fclose(f);
  }
  EXPECT_FALSE(LoadPartitionMap(path).ok);
  EXPECT_FALSE(LoadPartitionMap(path + ".missing").ok);
}

TEST(ShardRouterTest, RouteManyIsCrossUnlessOneCommonShard) {
  ShardRouter router(2, true);
  std::vector<Update> local = {Update::InsertEdge(0, 2),
                               Update::DeleteEdge(2, 4)};
  EXPECT_EQ(router.RouteMany(local.data(), local.size()), 0u);
  std::vector<Update> split = {Update::InsertEdge(0, 2),
                               Update::InsertEdge(1, 3)};  // shard 0 + shard 1
  EXPECT_EQ(router.RouteMany(split.data(), split.size()),
            ShardRouter::kCrossShard);
  std::vector<Update> crossing = {Update::InsertEdge(0, 1)};
  EXPECT_EQ(router.RouteMany(crossing.data(), crossing.size()),
            ShardRouter::kCrossShard);
  EXPECT_EQ(router.RouteMany(nullptr, 0), ShardRouter::kCrossShard);
}

TEST(PartitionAwareStoreTest, AppliesOnlyOwnedHalves) {
  StoreOptions opt;
  opt.partition = VertexPartition{1, 2};  // owns odd vertices
  GraphStore<HashIndex, false> store(8, opt);

  // Cross edge 2 -> 3: this partition owns only the in-half (dst = 3).
  store.InsertEdge(Edge{2, 3, 1});
  EXPECT_EQ(store.NumEdges(), 0u);        // counts owned-src edges only
  EXPECT_EQ(store.OutDegree(2), 0u);      // out-half not owned
  EXPECT_EQ(store.InDegree(3), 1u);       // in-half owned
  // Local edge 3 -> 5: both halves owned.
  store.InsertEdge(Edge{3, 5, 1});
  EXPECT_EQ(store.NumEdges(), 1u);
  EXPECT_EQ(store.OutDegree(3), 1u);
  EXPECT_EQ(store.InDegree(5), 1u);

  // Deleting the in-half-only edge must not touch the (unowned) out side.
  store.DeleteEdge(Edge{2, 3, 1});
  EXPECT_EQ(store.InDegree(3), 0u);
  EXPECT_EQ(store.NumEdges(), 1u);
}

// The stitched view must be indistinguishable from the unsharded store:
// identical edge counts, degrees, and — crucially for bit-identical
// propagation — identical per-vertex adjacency iteration ORDER.
TEST(ShardedStoreTest, StitchedViewMatchesUnshardedStore) {
  constexpr uint64_t kVertices = 64;
  StoreOptions sharded_opt;
  sharded_opt.partition.num_shards = 4;
  ShardedGraphStore<> sharded(kVertices, sharded_opt);
  DefaultGraphStore plain(kVertices);
  EXPECT_EQ(sharded.num_shards(), 4u);

  Rng rng(42);
  std::vector<Edge> live;
  for (int i = 0; i < 4000; ++i) {
    bool insert = live.empty() || rng.NextBounded(100) < 60;
    Edge e;
    if (insert) {
      e = Edge{rng.NextBounded(kVertices), rng.NextBounded(kVertices),
               1 + rng.NextBounded(4)};
      live.push_back(e);
      EXPECT_EQ(sharded.InsertEdge(e), plain.InsertEdge(e));
    } else if (rng.NextBounded(8) == 0) {
      // Spurious delete (edge likely absent): both must agree on kNotFound.
      e = Edge{rng.NextBounded(kVertices), rng.NextBounded(kVertices), 9};
      EXPECT_EQ(sharded.DeleteEdge(e), plain.DeleteEdge(e));
    } else {
      size_t pick = rng.NextBounded(live.size());
      e = live[pick];
      live[pick] = live.back();
      live.pop_back();
      EXPECT_EQ(sharded.DeleteEdge(e), plain.DeleteEdge(e));
    }
  }

  ASSERT_EQ(sharded.NumEdges(), plain.NumEdges());
  for (VertexId v = 0; v < kVertices; ++v) {
    ASSERT_EQ(sharded.OutDegree(v), plain.OutDegree(v)) << v;
    ASSERT_EQ(sharded.InDegree(v), plain.InDegree(v)) << v;
    std::vector<std::tuple<VertexId, Weight, uint64_t>> a, b;
    sharded.ForEachOut(v, [&](VertexId d, Weight w, uint64_t c) {
      a.emplace_back(d, w, c);
    });
    plain.ForEachOut(v, [&](VertexId d, Weight w, uint64_t c) {
      b.emplace_back(d, w, c);
    });
    ASSERT_EQ(a, b) << "out-adjacency (content or order) diverged at " << v;
    a.clear();
    b.clear();
    sharded.ForEachIn(v, [&](VertexId s, Weight w, uint64_t c) {
      a.emplace_back(s, w, c);
    });
    plain.ForEachIn(v, [&](VertexId s, Weight w, uint64_t c) {
      b.emplace_back(s, w, c);
    });
    ASSERT_EQ(a, b) << "in-adjacency diverged at " << v;
  }
}

TEST(ShardedStoreTest, VertexLifecycleMatchesUnsharded) {
  StoreOptions opt;
  opt.partition.num_shards = 2;
  ShardedGraphStore<> sharded(4, opt);
  DefaultGraphStore plain(4);

  EXPECT_EQ(sharded.AddVertex(), plain.AddVertex());  // fresh id 4
  sharded.InsertEdge(Edge{4, 1, 1});
  plain.InsertEdge(Edge{4, 1, 1});
  EXPECT_FALSE(sharded.RemoveVertex(4));  // still has an edge
  EXPECT_FALSE(plain.RemoveVertex(4));
  sharded.DeleteEdge(Edge{4, 1, 1});
  plain.DeleteEdge(Edge{4, 1, 1});
  EXPECT_TRUE(sharded.RemoveVertex(4));
  EXPECT_TRUE(plain.RemoveVertex(4));
  // Recycled-pool-first allocation, like the unsharded store.
  EXPECT_EQ(sharded.AddVertex(), plain.AddVertex());
  EXPECT_EQ(sharded.NumVertices(), plain.NumVertices());
}

//===--------------------------------------------------------------------===//
// Shard-count invariance (the acceptance property)
//===--------------------------------------------------------------------===//

struct DriveOutcome {
  std::vector<uint64_t> values[2];   // per algorithm (BFS, SSSP)
  std::vector<VertexId> parents[2];  // dependency-tree parents
  VersionId version = 0;
  uint64_t safe_ops = 0;
  uint64_t unsafe_ops = 0;
  uint64_t completed_ops = 0;
  uint64_t num_edges = 0;
};

/// Drives the full pipeline (pack -> WAL-less group commit -> sharded or
/// unsharded safe phase -> sequential unsafe lane) with ONE pipelined
/// session plus a tail of blocking transactions. A single session keeps the
/// claim order equal to the submission order whatever the epoch boundaries
/// land on, and the packer's reconciliation guarantees verdicts identical to
/// one-at-a-time classification — so with a 1-thread pool the outcome is a
/// pure function of the workload, and must not depend on the shard count.
template <typename Store>
DriveOutcome DriveWorkload(const StreamWorkload& wl, uint32_t num_shards,
                           std::shared_ptr<const PartitionMap> map = nullptr,
                           bool lock_free = false) {
  RisGraphOptions opt;
  opt.store.partition.num_shards = num_shards;
  opt.store.partition.map = std::move(map);
  opt.store.lock_free_apply = lock_free;
  RisGraph<Store> sys(wl.num_vertices, opt);
  size_t algos[2] = {sys.template AddAlgorithm<Bfs>(0),
                     sys.template AddAlgorithm<Sssp>(0)};
  sys.LoadGraph(wl.preload);
  sys.InitializeResults();

  ServiceOptions so;
  EpochPipeline<Store> pipeline(sys, so);
  SessionClient<Store> stream_client(sys, pipeline);
  SessionClient<Store> txn_client(sys, pipeline);
  pipeline.Start();
  for (const Update& u : wl.updates) {
    stream_client.SubmitAsync(u);
  }
  stream_client.Flush();
  // Blocking transactions exercise RouteMany tagging: some land whole on one
  // shard, some span shards, some are unsafe.
  for (uint64_t t = 0; t < 16; ++t) {
    VertexId a = (3 * t) % wl.num_vertices;
    VertexId b = (3 * t + 1) % wl.num_vertices;
    std::vector<Update> txn = {Update::InsertEdge(a, b, 1 + t % 3),
                               Update::InsertEdge(a, a, 2),
                               Update::DeleteEdge(a, b, 1 + t % 3)};
    txn_client.SubmitTxn(txn);
  }
  pipeline.Stop();

  DriveOutcome out;
  for (int k = 0; k < 2; ++k) {
    for (VertexId v = 0; v < wl.num_vertices; ++v) {
      out.values[k].push_back(sys.GetValue(algos[k], v));
      out.parents[k].push_back(sys.algorithm(algos[k]).Parent(v).parent);
    }
  }
  out.version = sys.GetCurrentVersion();
  out.safe_ops = pipeline.safe_ops();
  out.unsafe_ops = pipeline.unsafe_ops();
  out.completed_ops = pipeline.completed_ops();
  out.num_edges = sys.store().NumEdges();
  return out;
}

TEST(ShardCountInvarianceTest, IdenticalResultsVerdictsAndVersionsAt124) {
  // 1-thread pool: the baseline's only nondeterminism is pool interleaving;
  // with it pinned, every config must agree bit for bit.
  ThreadPool::ResetGlobal(1);

  RmatParams rmat;
  rmat.scale = 8;
  rmat.num_edges = 3000;
  rmat.max_weight = 4;
  rmat.seed = 7;
  StreamOptions so;
  so.preload_fraction = 0.5;
  so.insert_fraction = 0.6;
  so.seed = 11;
  StreamWorkload wl =
      BuildStream(uint64_t{1} << rmat.scale, GenerateRmat(rmat), so);

  DriveOutcome base = DriveWorkload<DefaultGraphStore>(wl, 1);
  ASSERT_GT(base.unsafe_ops, 0u);  // the workload must exercise both lanes
  ASSERT_GT(base.safe_ops, 0u);

  for (uint32_t shards : {1u, 2u, 4u}) {
    DriveOutcome got = DriveWorkload<ShardedGraphStore<>>(wl, shards);
    SCOPED_TRACE("shards=" + std::to_string(shards));
    for (int k = 0; k < 2; ++k) {
      ASSERT_EQ(got.values[k], base.values[k]) << "algorithm " << k;
      ASSERT_EQ(got.parents[k], base.parents[k]) << "algorithm " << k;
    }
    EXPECT_EQ(got.version, base.version);
    EXPECT_EQ(got.safe_ops, base.safe_ops);      // classification verdicts
    EXPECT_EQ(got.unsafe_ops, base.unsafe_ops);  // are shard-count-invariant
    EXPECT_EQ(got.completed_ops, base.completed_ops);
    EXPECT_EQ(got.num_edges, base.num_edges);
  }

  ThreadPool::ResetGlobal(0);
}

// The same anchor under a non-trivial locality map and under the lock-free
// apply mode: ownership decides only WHERE halves live, never what they
// contain or the order they apply in, and the lock-free fan is
// partition-exclusive by construction — so every combination must reproduce
// the unsharded baseline bit for bit.
TEST(ShardCountInvarianceTest, IdenticalUnderLocalityMapAndLockFreeApply) {
  ThreadPool::ResetGlobal(1);

  RmatParams rmat;
  rmat.scale = 8;
  rmat.num_edges = 3000;
  rmat.max_weight = 4;
  rmat.seed = 7;
  StreamOptions so;
  so.preload_fraction = 0.5;
  so.insert_fraction = 0.6;
  so.seed = 11;
  StreamWorkload wl =
      BuildStream(uint64_t{1} << rmat.scale, GenerateRmat(rmat), so);

  DriveOutcome base = DriveWorkload<DefaultGraphStore>(wl, 1);
  ASSERT_GT(base.unsafe_ops, 0u);
  ASSERT_GT(base.safe_ops, 0u);

  for (uint32_t shards : {1u, 2u, 4u}) {
    auto map = BuildLocalityMap(wl.num_vertices, shards, wl.preload);
    // Sanity: at N > 1 the map must differ from modulo somewhere, or the
    // run would not exercise non-trivial ownership at all.
    if (shards > 1) {
      bool differs = false;
      std::vector<uint32_t> table = map->Table();
      for (VertexId v = 0; v < table.size() && !differs; ++v) {
        differs = table[v] != static_cast<uint32_t>(v % shards);
      }
      ASSERT_TRUE(differs) << "locality map degenerated to modulo";
    }
    struct Config {
      std::shared_ptr<const PartitionMap> map;
      bool lock_free;
      const char* name;
    } configs[] = {
        {map, false, "locality+locked"},
        {map, true, "locality+lockfree"},
        {nullptr, true, "modulo+lockfree"},
    };
    for (const Config& cfg : configs) {
      SCOPED_TRACE(std::string(cfg.name) +
                   " shards=" + std::to_string(shards));
      DriveOutcome got =
          DriveWorkload<ShardedGraphStore<>>(wl, shards, cfg.map,
                                             cfg.lock_free);
      for (int k = 0; k < 2; ++k) {
        ASSERT_EQ(got.values[k], base.values[k]) << "algorithm " << k;
        ASSERT_EQ(got.parents[k], base.parents[k]) << "algorithm " << k;
      }
      EXPECT_EQ(got.version, base.version);
      EXPECT_EQ(got.safe_ops, base.safe_ops);
      EXPECT_EQ(got.unsafe_ops, base.unsafe_ops);
      EXPECT_EQ(got.completed_ops, base.completed_ops);
      EXPECT_EQ(got.num_edges, base.num_edges);
    }
  }

  ThreadPool::ResetGlobal(0);
}

// Cross-shard updates are the new locality class: the pipeline must see and
// count them under a partitioned store, and results must still match a
// from-scratch recompute (multi-threaded pool: values are a deterministic
// fixpoint even when parents race).
TEST(ShardCountInvarianceTest, CrossShardOpsCountedAndResultsConverge) {
  constexpr uint64_t kVertices = 256;
  RisGraphOptions opt;
  opt.store.partition.num_shards = 4;
  RisGraph<ShardedGraphStore<>> sys(kVertices, opt);
  size_t bfs = sys.AddAlgorithm<Bfs>(0);
  sys.InitializeResults();

  EpochPipeline<ShardedGraphStore<>> pipeline(sys);
  SessionClient<ShardedGraphStore<>> client(sys, pipeline);
  pipeline.Start();
  // A chain 0 -> 1 -> 2 -> ... : consecutive ids always live on different
  // partitions at N = 4, so every insertion is cross-shard; each is unsafe
  // (extends the BFS tree), and the duplicate re-insertions behind it are
  // safe cross-shard traffic for the fanned lanes.
  for (VertexId v = 0; v + 1 < kVertices; ++v) {
    client.Submit(Update::InsertEdge(v, v + 1));
  }
  std::vector<Update> dups;
  for (VertexId v = 0; v + 1 < kVertices; ++v) {
    dups.push_back(Update::InsertEdge(v, v + 1));
  }
  for (const Update& u : dups) client.SubmitAsync(u);
  client.Flush();
  pipeline.Stop();

  EXPECT_GT(pipeline.cross_shard_ops(), 0u);
  auto ref = ReferenceCompute<Bfs>(sys.store(), 0);
  for (VertexId v = 0; v < kVertices; ++v) {
    ASSERT_EQ(sys.GetValue(bfs, v), ref[v]) << v;
    ASSERT_EQ(sys.store().EdgeCount(v, EdgeKey{v + 1, 1}),
              v + 1 < kVertices ? 2u : 0u);
  }
}

}  // namespace
}  // namespace risgraph
