// Unit tests for the tail-latency scheduler (paper Section 5): the two
// drain heuristics and the adaptive-threshold dynamics (+1% on qualified
// epochs, -10% on missed ones, re-tuned every 3 epochs).

#include "runtime/scheduler.h"

#include <gtest/gtest.h>

namespace risgraph {
namespace {

SchedulerOptions TestOptions() {
  SchedulerOptions opt;
  opt.latency_target_ns = 20'000'000;
  opt.wait_fraction = 0.8;
  opt.initial_threshold = 48;
  opt.adjust_every_epochs = 3;
  return opt;
}

TEST(Scheduler, NoUnsafeNoDrain) {
  Scheduler s(TestOptions());
  EXPECT_FALSE(s.ShouldDrainUnsafe(0, 0));
  EXPECT_FALSE(s.ShouldDrainUnsafe(0, 1'000'000'000));  // wait is moot
}

TEST(Scheduler, DrainsWhenBacklogHitsThreshold) {
  Scheduler s(TestOptions());
  EXPECT_FALSE(s.ShouldDrainUnsafe(47, 0));
  EXPECT_TRUE(s.ShouldDrainUnsafe(48, 0));
  EXPECT_TRUE(s.ShouldDrainUnsafe(500, 0));
}

TEST(Scheduler, DrainsWhenEarliestWaitNears08Target) {
  Scheduler s(TestOptions());
  // 0.8 x 20 ms = 16 ms.
  EXPECT_FALSE(s.ShouldDrainUnsafe(1, 15'900'000));
  EXPECT_TRUE(s.ShouldDrainUnsafe(1, 16'000'000));
  EXPECT_TRUE(s.ShouldDrainUnsafe(1, 19'000'000));
}

TEST(Scheduler, ThresholdGrowsSlowlyWhenQualified) {
  Scheduler s(TestOptions());
  uint64_t before = s.unsafe_threshold();
  // Three all-qualified epochs trigger one +1% adjustment.
  s.OnEpochEnd(1000, 0);
  s.OnEpochEnd(1000, 0);
  EXPECT_EQ(s.unsafe_threshold(), before);  // not yet: adjusts every 3
  s.OnEpochEnd(1000, 0);
  EXPECT_GT(s.unsafe_threshold(), before);
  EXPECT_LE(s.unsafe_threshold(), before + std::max<uint64_t>(1, before / 100));
}

TEST(Scheduler, ThresholdDropsFastWhenMissing) {
  Scheduler s(TestOptions());
  uint64_t before = s.unsafe_threshold();
  // 1% misses breaks a P999 goal.
  s.OnEpochEnd(990, 10);
  s.OnEpochEnd(990, 10);
  s.OnEpochEnd(990, 10);
  uint64_t after = s.unsafe_threshold();
  EXPECT_LT(after, before);
  EXPECT_EQ(after, before - std::max<uint64_t>(1, before / 10));
}

TEST(Scheduler, ThresholdNeverReachesZero) {
  SchedulerOptions opt = TestOptions();
  opt.initial_threshold = 1;
  Scheduler s(opt);
  for (int i = 0; i < 100; ++i) s.OnEpochEnd(0, 100);
  EXPECT_GE(s.unsafe_threshold(), 1u);
}

TEST(Scheduler, AsymmetricRecoveryMatchesPaperRates) {
  // After a big drop, recovery is slow: -10% then many +1% steps to return —
  // the paper's "increase ... by 1% each time, and when decreasing, adjusts
  // ... by 10%" asymmetry. A large threshold keeps the 1% steps above the
  // +1 clamp so the rates are actually proportional.
  SchedulerOptions opt = TestOptions();
  opt.initial_threshold = 1000;
  Scheduler s(opt);
  uint64_t start = s.unsafe_threshold();
  for (int i = 0; i < 3; ++i) s.OnEpochEnd(0, 100);  // one -10% step
  uint64_t dropped = s.unsafe_threshold();
  ASSERT_LT(dropped, start);
  int recovery_adjustments = 0;
  while (s.unsafe_threshold() < start && recovery_adjustments < 1000) {
    for (int i = 0; i < 3; ++i) s.OnEpochEnd(100, 0);
    recovery_adjustments++;
  }
  EXPECT_GT(recovery_adjustments, 5);  // much slower up than down
}

TEST(Scheduler, EmptyEpochsDoNotAdjust) {
  Scheduler s(TestOptions());
  uint64_t before = s.unsafe_threshold();
  for (int i = 0; i < 12; ++i) s.OnEpochEnd(0, 0);
  EXPECT_EQ(s.unsafe_threshold(), before);
}

}  // namespace
}  // namespace risgraph
