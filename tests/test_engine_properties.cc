// Property-based validation of the incremental engine: against random R-MAT
// graphs and random update streams, the engine must always agree with a
// from-scratch reference computation, and its dependency tree must stay
// well-formed (paper Section 2's invariant: every value is witnessed by its
// parent edge).

#include <gtest/gtest.h>

#include <string>
#include <tuple>
#include <vector>

#include "core/algorithm_api.h"
#include "core/incremental_engine.h"
#include "core/reference.h"
#include "storage/graph_store.h"
#include "workload/rmat.h"
#include "workload/update_stream.h"

namespace risgraph {
namespace {

// Checks the dependency-tree invariants for one engine state.
template <typename Algo>
void CheckDependencyTree(const DefaultGraphStore& store,
                         const IncrementalEngine<Algo>& engine,
                         VertexId root) {
  uint64_t n = store.NumVertices();
  for (VertexId v = 0; v < n; ++v) {
    ParentEdge pe = engine.Parent(v);
    if (!engine.IsReached(v)) {
      EXPECT_EQ(pe.parent, kInvalidVertex) << "unreached v=" << v;
      continue;
    }
    if (pe.parent == kInvalidVertex) {
      // A tree root: its value must be its own init value.
      EXPECT_EQ(engine.Value(v), Algo::InitValue(v, root)) << "root v=" << v;
      continue;
    }
    // The parent edge must exist in the graph (either direction for
    // undirected algorithms).
    uint64_t count = store.EdgeCount(pe.parent, EdgeKey{v, pe.weight});
    if constexpr (Algo::kUndirected) {
      count += store.EdgeCount(v, EdgeKey{pe.parent, pe.weight});
    }
    EXPECT_GT(count, 0u) << "missing parent edge " << pe.parent << "->" << v;
    // The parent's relaxation must witness the value exactly.
    EXPECT_EQ(engine.Value(v), Algo::GenNext(pe.weight,
                                             engine.Value(pe.parent)))
        << "unwitnessed value at v=" << v;
  }
  // Acyclicity: following parents must terminate within n hops.
  for (VertexId v = 0; v < n; ++v) {
    VertexId cur = v;
    uint64_t hops = 0;
    while (cur != kInvalidVertex && hops <= n) {
      cur = engine.Parent(cur).parent;
      hops++;
    }
    EXPECT_LE(hops, n) << "parent cycle through v=" << v;
  }
}

struct PropertyParam {
  std::string algo;
  uint64_t seed;
  ParallelMode mode;
};

class EnginePropertyTest
    : public ::testing::TestWithParam<PropertyParam> {};

template <typename Algo>
void RunPropertyTest(uint64_t seed, ParallelMode mode) {
  RmatParams rp;
  rp.scale = 8;
  rp.num_edges = 1500;
  rp.max_weight = 8;
  rp.seed = seed;
  std::vector<Edge> edges = GenerateRmat(rp);

  StreamOptions so;
  so.preload_fraction = 0.7;
  so.insert_fraction = 0.5;
  so.seed = seed * 31 + 1;
  StreamWorkload wl = BuildStream(uint64_t{1} << rp.scale, edges, so);

  DefaultGraphStore store(wl.num_vertices);
  for (const Edge& e : wl.preload) store.InsertEdge(e);

  EngineOptions opt;
  opt.mode = mode;
  opt.sequential_edge_threshold = (seed % 2 == 0) ? 2048 : 0;
  IncrementalEngine<Algo> engine(store, /*root=*/0, opt);

  auto check = [&] {
    auto ref = ReferenceCompute<Algo>(store, 0);
    for (VertexId v = 0; v < wl.num_vertices; ++v) {
      ASSERT_EQ(engine.Value(v), ref[v])
          << Algo::Name() << " diverged at v=" << v;
    }
    CheckDependencyTree(store, engine, 0);
  };
  check();

  size_t step = 0;
  for (const Update& u : wl.updates) {
    if (u.kind == UpdateKind::kInsertEdge) {
      store.InsertEdge(u.edge);
      engine.OnInsert(u.edge);
    } else if (u.kind == UpdateKind::kDeleteEdge) {
      DeleteResult r = store.DeleteEdge(u.edge);
      engine.OnDelete(u.edge, r);
    }
    // Full reference check every 64 updates (it is O(V*E)); invariants are
    // cheap enough to check more often.
    if (++step % 64 == 0) check();
    if (step >= 600) break;
  }
  check();
}

TEST_P(EnginePropertyTest, IncrementalMatchesRecompute) {
  const PropertyParam& p = GetParam();
  if (p.algo == "bfs") {
    RunPropertyTest<Bfs>(p.seed, p.mode);
  } else if (p.algo == "sssp") {
    RunPropertyTest<Sssp>(p.seed, p.mode);
  } else if (p.algo == "sswp") {
    RunPropertyTest<Sswp>(p.seed, p.mode);
  } else {
    RunPropertyTest<Wcc>(p.seed, p.mode);
  }
}

std::vector<PropertyParam> MakeParams() {
  std::vector<PropertyParam> params;
  for (const char* algo : {"bfs", "sssp", "sswp", "wcc"}) {
    for (uint64_t seed : {1u, 2u, 3u}) {
      params.push_back({algo, seed, ParallelMode::kHybrid});
    }
    params.push_back({algo, 4, ParallelMode::kVertexParallel});
    params.push_back({algo, 5, ParallelMode::kEdgeParallel});
  }
  return params;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, EnginePropertyTest, ::testing::ValuesIn(MakeParams()),
    [](const ::testing::TestParamInfo<PropertyParam>& info) {
      const PropertyParam& p = info.param;
      std::string mode =
          p.mode == ParallelMode::kHybrid
              ? "hybrid"
              : (p.mode == ParallelMode::kVertexParallel ? "vertex" : "edge");
      return p.algo + "_seed" + std::to_string(p.seed) + "_" + mode;
    });

// Safe updates must never change any result — the foundation of inter-update
// parallelism (paper Section 4). Sweep a random stream, and for every update
// classified safe, assert values before == after.
class SafetyPropertyTest : public ::testing::TestWithParam<std::string> {};

template <typename Algo>
void RunSafetyTest() {
  RmatParams rp;
  rp.scale = 7;
  rp.num_edges = 900;
  rp.max_weight = 4;
  rp.seed = 99;
  std::vector<Edge> edges = GenerateRmat(rp);
  StreamWorkload wl =
      BuildStream(uint64_t{1} << rp.scale, edges, {.seed = 17});

  DefaultGraphStore store(wl.num_vertices);
  for (const Edge& e : wl.preload) store.InsertEdge(e);
  IncrementalEngine<Algo> engine(store, 0);

  uint64_t safe_count = 0;
  std::vector<uint64_t> before(wl.num_vertices);
  for (const Update& u : wl.updates) {
    bool safe = false;
    if (u.kind == UpdateKind::kInsertEdge) {
      safe = engine.IsInsertSafe(u.edge);
    } else {
      uint64_t count = store.EdgeCount(u.edge.src,
                                       EdgeKey{u.edge.dst, u.edge.weight});
      safe = engine.IsDeleteSafe(u.edge, count == 1);
    }
    if (safe) {
      for (VertexId v = 0; v < wl.num_vertices; ++v) {
        before[v] = engine.Value(v);
      }
    }
    if (u.kind == UpdateKind::kInsertEdge) {
      store.InsertEdge(u.edge);
      engine.OnInsert(u.edge);
    } else {
      DeleteResult r = store.DeleteEdge(u.edge);
      engine.OnDelete(u.edge, r);
    }
    if (safe) {
      safe_count++;
      for (VertexId v = 0; v < wl.num_vertices; ++v) {
        ASSERT_EQ(engine.Value(v), before[v])
            << Algo::Name() << ": safe update changed v=" << v;
      }
      EXPECT_TRUE(engine.LastModified().empty());
    }
  }
  // The observation behind Table 4: most updates are safe.
  EXPECT_GT(safe_count, wl.updates.size() / 2);
}

TEST_P(SafetyPropertyTest, SafeUpdatesChangeNothing) {
  const std::string& algo = GetParam();
  if (algo == "bfs") {
    RunSafetyTest<Bfs>();
  } else if (algo == "sssp") {
    RunSafetyTest<Sssp>();
  } else if (algo == "sswp") {
    RunSafetyTest<Sswp>();
  } else {
    RunSafetyTest<Wcc>();
  }
}

INSTANTIATE_TEST_SUITE_P(AllAlgos, SafetyPropertyTest,
                         ::testing::Values("bfs", "sssp", "sswp", "wcc"),
                         [](const auto& info) { return info.param; });

}  // namespace
}  // namespace risgraph
