#include <gtest/gtest.h>

#include <cmath>

#include "core/hybrid_parallel.h"

namespace risgraph {
namespace {

TEST(HybridClassifier, DefaultBoundaryShape) {
  HybridClassifier c;
  // Hub-dominated frontier: one vertex, a million edges -> edge-parallel.
  EXPECT_EQ(c.Decide(1, 1'000'000), ParallelMode::kEdgeParallel);
  // Broad flat frontier: many vertices, few edges each -> vertex-parallel.
  EXPECT_EQ(c.Decide(100'000, 200'000), ParallelMode::kVertexParallel);
}

TEST(HybridClassifier, TrainRecoversPlantedBoundary) {
  // Plant a ground-truth boundary le = 1.5*lv + 3 and emit labeled samples
  // around it; training must recover a line that classifies them correctly.
  std::vector<HybridClassifier::LabeledSample> samples;
  for (uint64_t lv = 0; lv <= 20; ++lv) {
    for (uint64_t le = 0; le <= 34; ++le) {
      double boundary = 1.5 * static_cast<double>(lv) + 3.0;
      bool edge_wins = static_cast<double>(le) > boundary;
      // Skip points too close to the line (paper filters <20% differences).
      if (std::abs(static_cast<double>(le) - boundary) < 1.5) continue;
      samples.push_back({(uint64_t{1} << lv) - 1, (uint64_t{1} << le) - 1,
                         edge_wins});
    }
  }
  HybridClassifier c;
  ASSERT_TRUE(c.TrainLeastSquares(samples));
  int correct = 0;
  for (const auto& s : samples) {
    ParallelMode got = c.Decide(s.active_vertices, s.active_edges);
    bool predicted_edge = got == ParallelMode::kEdgeParallel;
    if (predicted_edge == s.edge_parallel_wins) correct++;
  }
  EXPECT_GT(static_cast<double>(correct) / samples.size(), 0.9);
}

TEST(HybridClassifier, DegenerateTrainingRejected) {
  HybridClassifier c(2.0, 5.0);
  std::vector<HybridClassifier::LabeledSample> too_few = {
      {1, 1, true}, {2, 2, false}};
  EXPECT_FALSE(c.TrainLeastSquares(too_few));
  EXPECT_EQ(c.slope(), 2.0);  // unchanged
  // All-identical samples are singular.
  std::vector<HybridClassifier::LabeledSample> degenerate(
      10, HybridClassifier::LabeledSample{4, 4, true});
  EXPECT_FALSE(c.TrainLeastSquares(degenerate));
}

TEST(HybridClassifier, ExplicitParameters) {
  HybridClassifier c(/*slope=*/0.0, /*intercept=*/10.0);  // edges > 1024 only
  EXPECT_EQ(c.Decide(1'000'000, 1023), ParallelMode::kVertexParallel);
  EXPECT_EQ(c.Decide(1, 4096), ParallelMode::kEdgeParallel);
}

}  // namespace
}  // namespace risgraph
