// Differential fuzz of the three edge-index implementations (Table 8's
// Hash / BTree / ART) against a std::unordered_map reference: random
// interleavings of Insert / Erase / Find / in-place mutation / Clear must
// agree exactly, including full-content ForEach enumeration.

#include <gtest/gtest.h>

#include <string>
#include <unordered_map>

#include "common/random.h"
#include "common/types.h"
#include "index/art_index.h"
#include "index/btree_index.h"
#include "index/hash_index.h"

namespace risgraph {
namespace {

template <typename IndexT>
void FuzzAgainstReference(uint64_t seed, uint64_t key_space,
                          uint64_t weight_space, int ops) {
  IndexT index;
  std::unordered_map<EdgeKey, uint64_t> ref;
  Rng rng(seed);

  auto random_key = [&] {
    return EdgeKey{rng.NextBounded(key_space),
                   rng.NextBounded(weight_space)};
  };

  for (int i = 0; i < ops; ++i) {
    EdgeKey key = random_key();
    switch (rng.NextBounded(10)) {
      case 0:
      case 1:
      case 2:
      case 3: {  // insert (fresh keys only, as the adjacency list does)
        if (ref.find(key) == ref.end()) {
          uint64_t value = rng.NextBounded(1 << 20);
          index.Insert(key, value);
          ref[key] = value;
        }
        break;
      }
      case 4:
      case 5: {  // erase
        bool present = ref.erase(key) > 0;
        if (present) index.Erase(key);
        break;
      }
      case 6:
      case 7: {  // in-place mutation through Find (duplicate-count bumps)
        auto it = ref.find(key);
        uint64_t* slot = index.Find(key);
        ASSERT_EQ(slot != nullptr, it != ref.end());
        if (slot != nullptr) {
          (*slot)++;
          it->second++;
        }
        break;
      }
      case 8: {  // point lookup
        auto it = ref.find(key);
        uint64_t* slot = index.Find(key);
        ASSERT_EQ(slot != nullptr, it != ref.end());
        if (slot != nullptr) ASSERT_EQ(*slot, it->second);
        break;
      }
      case 9: {  // rare full clear (the rebuild path on compaction)
        if (rng.NextBounded(100) == 0) {
          index.Clear();
          ref.clear();
        }
        break;
      }
    }
    if (i % 997 == 0 || i + 1 == ops) {
      // Full-content check via enumeration.
      std::unordered_map<EdgeKey, uint64_t> seen;
      index.ForEach([&](EdgeKey k, uint64_t v) { seen[k] = v; });
      ASSERT_EQ(seen.size(), ref.size()) << "op " << i;
      for (const auto& [k, v] : ref) {
        auto it = seen.find(k);
        ASSERT_NE(it, seen.end());
        ASSERT_EQ(it->second, v);
      }
    }
  }
  EXPECT_GT(index.MemoryBytes(), 0u);
}

struct FuzzParam {
  std::string index;
  uint64_t key_space;
  uint64_t weight_space;
};

class IndexFuzzTest : public ::testing::TestWithParam<FuzzParam> {};

TEST_P(IndexFuzzTest, MatchesUnorderedMapReference) {
  const FuzzParam& p = GetParam();
  const int kOps = 20000;
  for (uint64_t seed : {1u, 2u}) {
    if (p.index == "hash") {
      FuzzAgainstReference<HashIndex>(seed, p.key_space, p.weight_space,
                                      kOps);
    } else if (p.index == "btree") {
      FuzzAgainstReference<BTreeIndex>(seed, p.key_space, p.weight_space,
                                       kOps);
    } else {
      FuzzAgainstReference<ArtIndex>(seed, p.key_space, p.weight_space, kOps);
    }
  }
}

// Key-space shapes: dense small (collision-heavy), sparse huge (deep radix
// paths), single-destination many-weights (the duplicate-edge pattern).
INSTANTIATE_TEST_SUITE_P(
    Shapes, IndexFuzzTest,
    ::testing::Values(FuzzParam{"hash", 64, 4}, FuzzParam{"hash", 1 << 30, 64},
                      FuzzParam{"btree", 64, 4},
                      FuzzParam{"btree", 1 << 30, 64},
                      FuzzParam{"art", 64, 4}, FuzzParam{"art", 1 << 30, 64},
                      FuzzParam{"hash", 1, 1 << 20},
                      FuzzParam{"btree", 1, 1 << 20},
                      FuzzParam{"art", 1, 1 << 20}),
    [](const auto& info) {
      return info.param.index + "_k" + std::to_string(info.param.key_space) +
             "_w" + std::to_string(info.param.weight_space);
    });

}  // namespace
}  // namespace risgraph
