// Typed tests run the identical contract suite against all three edge-index
// implementations (Hash / BTree / ART — the alternatives of Table 8), plus a
// randomized differential test against std::map.

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "common/random.h"
#include "common/types.h"
#include "index/art_index.h"
#include "index/btree_index.h"
#include "index/hash_index.h"

namespace risgraph {
namespace {

template <typename T>
class IndexTest : public ::testing::Test {};

using IndexTypes = ::testing::Types<HashIndex, BTreeIndex, ArtIndex>;
TYPED_TEST_SUITE(IndexTest, IndexTypes);

TYPED_TEST(IndexTest, InsertFindErase) {
  TypeParam index;
  EXPECT_EQ(index.Size(), 0u);
  index.Insert(EdgeKey{1, 2}, 42);
  ASSERT_NE(index.Find(EdgeKey{1, 2}), nullptr);
  EXPECT_EQ(*index.Find(EdgeKey{1, 2}), 42u);
  EXPECT_EQ(index.Find(EdgeKey{1, 3}), nullptr);
  EXPECT_EQ(index.Find(EdgeKey{2, 2}), nullptr);
  EXPECT_TRUE(index.Erase(EdgeKey{1, 2}));
  EXPECT_EQ(index.Find(EdgeKey{1, 2}), nullptr);
  EXPECT_FALSE(index.Erase(EdgeKey{1, 2}));
  EXPECT_EQ(index.Size(), 0u);
}

TYPED_TEST(IndexTest, InsertOverwritesValue) {
  TypeParam index;
  index.Insert(EdgeKey{5, 5}, 1);
  index.Insert(EdgeKey{5, 5}, 2);
  EXPECT_EQ(index.Size(), 1u);
  EXPECT_EQ(*index.Find(EdgeKey{5, 5}), 2u);
}

TYPED_TEST(IndexTest, SameDstDifferentWeightAreDistinctKeys) {
  TypeParam index;
  index.Insert(EdgeKey{9, 1}, 10);
  index.Insert(EdgeKey{9, 2}, 20);
  EXPECT_EQ(index.Size(), 2u);
  EXPECT_EQ(*index.Find(EdgeKey{9, 1}), 10u);
  EXPECT_EQ(*index.Find(EdgeKey{9, 2}), 20u);
  EXPECT_TRUE(index.Erase(EdgeKey{9, 1}));
  EXPECT_EQ(*index.Find(EdgeKey{9, 2}), 20u);
}

TYPED_TEST(IndexTest, ManySequentialKeys) {
  TypeParam index;
  for (uint64_t i = 0; i < 5000; ++i) index.Insert(EdgeKey{i, i % 7}, i);
  EXPECT_EQ(index.Size(), 5000u);
  for (uint64_t i = 0; i < 5000; ++i) {
    auto* v = index.Find(EdgeKey{i, i % 7});
    ASSERT_NE(v, nullptr) << "key " << i;
    EXPECT_EQ(*v, i);
  }
  // Erase even keys.
  for (uint64_t i = 0; i < 5000; i += 2) {
    EXPECT_TRUE(index.Erase(EdgeKey{i, i % 7}));
  }
  EXPECT_EQ(index.Size(), 2500u);
  for (uint64_t i = 0; i < 5000; ++i) {
    auto* v = index.Find(EdgeKey{i, i % 7});
    if (i % 2 == 0) {
      EXPECT_EQ(v, nullptr);
    } else {
      ASSERT_NE(v, nullptr);
      EXPECT_EQ(*v, i);
    }
  }
}

TYPED_TEST(IndexTest, ForEachVisitsExactlyLiveKeys) {
  TypeParam index;
  for (uint64_t i = 0; i < 100; ++i) index.Insert(EdgeKey{i, 0}, i * 10);
  for (uint64_t i = 0; i < 100; i += 3) index.Erase(EdgeKey{i, 0});
  std::map<uint64_t, uint64_t> seen;
  index.ForEach([&](EdgeKey k, uint64_t v) { seen[k.dst] = v; });
  EXPECT_EQ(seen.size(), index.Size());
  for (auto& [dst, v] : seen) {
    EXPECT_NE(dst % 3, 0u);
    EXPECT_EQ(v, dst * 10);
  }
}

TYPED_TEST(IndexTest, ClearEmptiesEverything) {
  TypeParam index;
  for (uint64_t i = 0; i < 1000; ++i) index.Insert(EdgeKey{i, 1}, i);
  index.Clear();
  EXPECT_EQ(index.Size(), 0u);
  EXPECT_EQ(index.Find(EdgeKey{5, 1}), nullptr);
  index.Insert(EdgeKey{5, 1}, 99);  // usable after Clear
  EXPECT_EQ(*index.Find(EdgeKey{5, 1}), 99u);
}

TYPED_TEST(IndexTest, MemoryGrowsWithContent) {
  TypeParam index;
  size_t empty = index.MemoryBytes();
  for (uint64_t i = 0; i < 10000; ++i) index.Insert(EdgeKey{i, i}, i);
  EXPECT_GT(index.MemoryBytes(), empty);
}

TYPED_TEST(IndexTest, RandomizedDifferentialAgainstStdMap) {
  TypeParam index;
  std::map<EdgeKey, uint64_t> model;
  Rng rng(0xfeed);
  for (int op = 0; op < 50000; ++op) {
    EdgeKey key{rng.NextBounded(500), rng.NextBounded(8)};
    uint64_t action = rng.NextBounded(10);
    if (action < 5) {
      uint64_t value = rng.Next();
      index.Insert(key, value);
      model[key] = value;
    } else if (action < 8) {
      bool erased = index.Erase(key);
      EXPECT_EQ(erased, model.erase(key) > 0);
    } else {
      auto* found = index.Find(key);
      auto it = model.find(key);
      if (it == model.end()) {
        EXPECT_EQ(found, nullptr);
      } else {
        ASSERT_NE(found, nullptr);
        EXPECT_EQ(*found, it->second);
      }
    }
    if (op % 10000 == 0) {
      EXPECT_EQ(index.Size(), model.size());
    }
  }
  EXPECT_EQ(index.Size(), model.size());
  size_t visited = 0;
  index.ForEach([&](EdgeKey k, uint64_t v) {
    auto it = model.find(k);
    ASSERT_NE(it, model.end());
    EXPECT_EQ(v, it->second);
    visited++;
  });
  EXPECT_EQ(visited, model.size());
}

// ART-specific: keys sharing long prefixes exercise path compression splits
// and collapses.
TEST(ArtIndex, PrefixHeavyKeys) {
  ArtIndex index;
  // All dsts share high 56 bits; weights share high 56 bits too.
  for (uint64_t i = 0; i < 256; ++i) {
    index.Insert(EdgeKey{0xAABBCCDD00000000ULL + i, 0x11220000ULL + i}, i);
  }
  EXPECT_EQ(index.Size(), 256u);
  for (uint64_t i = 0; i < 256; ++i) {
    auto* v = index.Find(EdgeKey{0xAABBCCDD00000000ULL + i, 0x11220000ULL + i});
    ASSERT_NE(v, nullptr);
    EXPECT_EQ(*v, i);
  }
  // Erase everything in reverse order — exercises node shrink/collapse.
  for (uint64_t i = 256; i-- > 0;) {
    EXPECT_TRUE(
        index.Erase(EdgeKey{0xAABBCCDD00000000ULL + i, 0x11220000ULL + i}));
  }
  EXPECT_EQ(index.Size(), 0u);
}

TEST(ArtIndex, GrowThroughAllNodeTypes) {
  ArtIndex index;
  // 300 children under one radix node forces Node4 -> 16 -> 48 -> 256.
  for (uint64_t i = 0; i < 300; ++i) {
    index.Insert(EdgeKey{i << 56, 7}, i);  // differ in the first key byte
  }
  // 300 > 256 distinct first bytes impossible; use two levels instead.
  EXPECT_GE(index.Size(), 256u);
}

TEST(BTreeIndex, OrderedForEach) {
  BTreeIndex index;
  Rng rng(3);
  for (int i = 0; i < 2000; ++i) {
    index.Insert(EdgeKey{rng.NextBounded(10000), rng.NextBounded(4)}, i);
  }
  EdgeKey prev{0, 0};
  bool first = true;
  index.ForEach([&](EdgeKey k, uint64_t) {
    if (!first) {
      EXPECT_LT(prev, k);  // B+-tree iteration is sorted
    }
    prev = k;
    first = false;
  });
}

}  // namespace
}  // namespace risgraph
