// End-to-end tests of the RPC tier: protocol-v2 server over a live service,
// real Unix-domain sockets, concurrent clients, the pipelined lane
// (correlation-ID windows, kBusy load shedding, flush semantics), version
// negotiation, and malformed-input handling.

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstring>
#include <thread>
#include <vector>

#include "common/random.h"
#include "core/algorithm_api.h"
#include "core/reference.h"
#include "net/rpc_client.h"
#include "net/rpc_server.h"
#include "rpc_test_util.h"
#include "runtime/client.h"
#include "runtime/risgraph.h"
#include "runtime/service.h"

namespace risgraph {
namespace {

using testutil::HandshakeRaw;
using testutil::RawConnect;
using testutil::ReadFrameRaw;
using testutil::SendFrameRaw;

//===--- Fixture -----------------------------------------------------------===//

class RpcTestBase : public ::testing::Test {
 protected:
  static constexpr uint64_t kVertices = 256;

  void Boot(ServiceOptions options = {}, bool start_service = true,
            int max_clients = 32) {
    socket_path_ = "/tmp/risgraph_rpc_" +
                   std::to_string(reinterpret_cast<uintptr_t>(this)) + ".sock";
    sys_ = std::make_unique<RisGraph<>>(kVertices);
    bfs_ = sys_->AddAlgorithm<Bfs>(0);
    sys_->InitializeResults();
    service_ = std::make_unique<RisGraphService<>>(*sys_, options);
    server_ = std::make_unique<RpcServer>(*sys_, *service_, socket_path_);
    ASSERT_TRUE(server_->Start(max_clients));
    if (start_service) service_->Start();
  }

  void TearDown() override {
    if (server_) server_->Stop();
    if (service_) service_->Stop();
  }

  std::string socket_path_;
  std::unique_ptr<RisGraph<>> sys_;
  size_t bfs_ = 0;
  std::unique_ptr<RisGraphService<>> service_;
  std::unique_ptr<RpcServer> server_;
};

/// The common case: everything booted and running.
class RpcTest : public RpcTestBase {
 protected:
  void SetUp() override { Boot(); }
};

//===--- Closed-loop lane (v1 semantics carried over) ----------------------===//

TEST_F(RpcTest, PingAndBasicUpdates) {
  RpcClient client;
  ASSERT_TRUE(client.Connect(socket_path_));
  EXPECT_EQ(client.protocol_version(), rpc::kProtocolVersion);
  EXPECT_TRUE(client.Ping());

  VersionId v1 = client.InsEdge(0, 1);
  ASSERT_NE(v1, kInvalidVersion);
  VersionId v2 = client.InsEdge(1, 2);
  ASSERT_NE(v2, kInvalidVersion);
  EXPECT_GE(v2, v1);

  uint64_t dist = 0;
  ASSERT_TRUE(client.GetValue(bfs_, 2, &dist));
  EXPECT_EQ(dist, 2u);

  ParentEdge p;
  ASSERT_TRUE(client.GetParent(bfs_, 2, &p));
  EXPECT_EQ(p.parent, 1u);

  ASSERT_NE(client.DelEdge(1, 2), kInvalidVersion);
  ASSERT_TRUE(client.GetValue(bfs_, 2, &dist));
  EXPECT_EQ(dist, kInfWeight);
}

TEST_F(RpcTest, HistoricalReadsAndModifiedFeed) {
  RpcClient client;
  ASSERT_TRUE(client.Connect(socket_path_));
  client.InsEdge(0, 1);
  VersionId ver = client.InsEdge(1, 2);
  client.InsEdge(0, 2);  // improves 2 from distance 2 to 1

  VersionId cur = 0;
  ASSERT_TRUE(client.GetCurrentVersion(&cur));
  EXPECT_GT(cur, ver);

  uint64_t then = 0;
  ASSERT_TRUE(client.GetValueAt(bfs_, ver, 2, &then));
  EXPECT_EQ(then, 2u);
  uint64_t now = 0;
  ASSERT_TRUE(client.GetValue(bfs_, 2, &now));
  EXPECT_EQ(now, 1u);

  std::vector<VertexId> mods;
  ASSERT_TRUE(client.GetModified(bfs_, cur, &mods));
  ASSERT_EQ(mods.size(), 1u);
  EXPECT_EQ(mods[0], 2u);

  EXPECT_TRUE(client.ReleaseHistory(cur));
}

TEST_F(RpcTest, VertexLifecycle) {
  RpcClient client;
  ASSERT_TRUE(client.Connect(socket_path_));
  VertexId fresh = kInvalidVertex;
  ASSERT_NE(client.InsVertex(&fresh), kInvalidVersion);
  EXPECT_EQ(fresh, kVertices);  // first id beyond the preallocated range
  EXPECT_NE(client.DelVertex(fresh), kInvalidVersion);
}

TEST_F(RpcTest, TransactionsAreAtomic) {
  RpcClient client;
  ASSERT_TRUE(client.Connect(socket_path_));
  std::vector<Update> txn = {Update::InsertEdge(0, 10, 1),
                             Update::InsertEdge(10, 11, 1),
                             Update::InsertEdge(11, 12, 1)};
  VersionId ver = client.SubmitTxn(txn);
  ASSERT_NE(ver, kInvalidVersion);
  std::vector<VertexId> mods;
  ASSERT_TRUE(client.GetModified(bfs_, ver, &mods));
  EXPECT_EQ(mods.size(), 3u);  // one version covers the whole transaction
}

TEST_F(RpcTest, ErrorsForBadArguments) {
  RpcClient client;
  ASSERT_TRUE(client.Connect(socket_path_));
  uint64_t out = 0;
  EXPECT_FALSE(client.GetValue(/*algo=*/99, 0, &out));   // unknown algorithm
  EXPECT_FALSE(client.GetValue(bfs_, 1 << 20, &out));    // vertex range
  EXPECT_EQ(client.InsEdge(1 << 20, 0), kInvalidVersion);
  EXPECT_TRUE(client.Ping());  // the connection survives semantic errors
}

TEST_F(RpcTest, ConcurrentClientsConvergeToOracle) {
  constexpr int kClients = 8;
  constexpr int kOpsEach = 150;
  std::vector<std::thread> threads;
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      RpcClient client;
      ASSERT_TRUE(client.Connect(socket_path_));
      for (int i = 0; i < kOpsEach; ++i) {
        VertexId a = (c * 31 + i * 7) % kVertices;
        VertexId b = (c * 17 + i * 13) % kVertices;
        if (i % 3 == 2) {
          client.DelEdge(a, b);
        } else {
          client.InsEdge(a, b);
        }
      }
    });
  }
  for (auto& t : threads) t.join();

  EXPECT_EQ(server_->connections_served(), static_cast<uint64_t>(kClients));
  EXPECT_GE(server_->requests_served(),
            static_cast<uint64_t>(kClients * kOpsEach));

  auto ref = ReferenceCompute<Bfs>(sys_->store(), 0);
  for (VertexId v = 0; v < kVertices; ++v) {
    ASSERT_EQ(sys_->GetValue(bfs_, v), ref[v]) << v;
  }
}

//===--- Version negotiation -----------------------------------------------===//

TEST_F(RpcTest, V1ClientRejectedWithUnsupportedVersion) {
  // A v1 client's first frame is a bare opcode — here kPing, one byte. A v2
  // server must reject it with a clean one-byte kUnsupportedVersion (which a
  // v1 client reads as its status byte), not desync or hang.
  int fd = RawConnect(socket_path_);
  ASSERT_GE(fd, 0);
  ASSERT_TRUE(SendFrameRaw(fd, {0x00}));  // v1 kPing
  std::vector<uint8_t> resp;
  ASSERT_TRUE(ReadFrameRaw(fd, &resp));
  ASSERT_EQ(resp.size(), 1u);
  EXPECT_EQ(resp[0], static_cast<uint8_t>(rpc::Status::kUnsupportedVersion));
  uint8_t byte;
  EXPECT_EQ(::read(fd, &byte, 1), 0);  // EOF: connection closed
  ::close(fd);

  // A v1 update frame (opcode + three u64s) gets the same treatment.
  fd = RawConnect(socket_path_);
  ASSERT_GE(fd, 0);
  std::vector<uint8_t> v1_ins;
  rpc::Writer w(v1_ins);
  w.U8(1);  // v1 kInsEdge
  w.U64(0);
  w.U64(1);
  w.U64(1);
  ASSERT_TRUE(SendFrameRaw(fd, v1_ins));
  ASSERT_TRUE(ReadFrameRaw(fd, &resp));
  ASSERT_EQ(resp.size(), 1u);
  EXPECT_EQ(resp[0], static_cast<uint8_t>(rpc::Status::kUnsupportedVersion));
  ::close(fd);

  EXPECT_GE(server_->handshakes_rejected(), 2u);

  // The server still serves v2 clients afterwards.
  RpcClient client;
  ASSERT_TRUE(client.Connect(socket_path_));
  EXPECT_TRUE(client.Ping());
}

TEST_F(RpcTest, VersionRangeOutsideServerIsRejected) {
  for (auto [lo, hi] :
       {std::pair<uint16_t, uint16_t>{1, 1},
        std::pair<uint16_t, uint16_t>{rpc::kProtocolVersion + 1, 9}}) {
    int fd = RawConnect(socket_path_);
    ASSERT_GE(fd, 0);
    EXPECT_EQ(HandshakeRaw(fd, lo, hi), 0u) << lo << ".." << hi;
    ::close(fd);
  }
  // A client offering a range that covers v2 negotiates v2.
  int fd = RawConnect(socket_path_);
  ASSERT_GE(fd, 0);
  EXPECT_EQ(HandshakeRaw(fd, 1, 7), rpc::kProtocolVersion);
  ::close(fd);
}

//===--- Malformed input ----------------------------------------------------===//

TEST_F(RpcTest, MalformedFrameDropsConnectionOnly) {
  int fd = RawConnect(socket_path_);
  ASSERT_GE(fd, 0);
  ASSERT_EQ(HandshakeRaw(fd), rpc::kProtocolVersion);
  // A frame too short to even carry [corr][opcode].
  ASSERT_TRUE(SendFrameRaw(fd, {0xff, 0xee, 0xdd}));
  // Server answers [corr=0][kBadRequest], then closes.
  std::vector<uint8_t> resp;
  ASSERT_TRUE(ReadFrameRaw(fd, &resp));
  ASSERT_EQ(resp.size(), 9u);
  uint64_t corr = 1;
  std::memcpy(&corr, resp.data(), 8);
  EXPECT_EQ(corr, 0u);
  EXPECT_EQ(resp[8], static_cast<uint8_t>(rpc::Status::kBadRequest));
  uint8_t byte;
  EXPECT_EQ(::read(fd, &byte, 1), 0);  // EOF: connection dropped
  ::close(fd);

  // The server is still healthy for well-behaved clients.
  RpcClient client;
  ASSERT_TRUE(client.Connect(socket_path_));
  EXPECT_TRUE(client.Ping());
}

TEST_F(RpcTest, OversizedFrameIsRejected) {
  int fd = RawConnect(socket_path_);
  ASSERT_GE(fd, 0);
  ASSERT_EQ(HandshakeRaw(fd), rpc::kProtocolVersion);
  uint32_t len = rpc::kMaxFrameBytes + 1;
  ASSERT_EQ(::write(fd, &len, 4), 4);
  uint8_t byte;
  EXPECT_LE(::read(fd, &byte, 1), 0);  // dropped without reading the body
  ::close(fd);
}

//===--- Pipelined lane ------------------------------------------------------//

TEST_F(RpcTest, PipelinedMatchesClosedLoopFinalState) {
  // The hazard: ins/del pairs of the SAME edge key queued back-to-back —
  // out-of-order execution would leave different duplicate counts.
  std::vector<Update> stream;
  Rng rng(11);
  for (int i = 0; i < 1500; ++i) {
    VertexId a = rng.NextBounded(kVertices);
    VertexId b = rng.NextBounded(kVertices);
    Weight w = 1 + rng.NextBounded(3);
    stream.push_back(Update::InsertEdge(a, b, w));
    if (rng.NextBool(0.6)) {
      stream.push_back(Update::DeleteEdge(a, b, w));
    }
  }

  // Closed loop into the fixture's system, over the wire.
  {
    RpcClient closed;
    ASSERT_TRUE(closed.Connect(socket_path_));
    for (const Update& u : stream) {
      ASSERT_NE(closed.Submit(u), kInvalidVersion);
    }
  }

  // Pipelined submission of the same stream into a second, identical stack.
  RisGraph<> sys2(kVertices);
  size_t bfs2 = sys2.AddAlgorithm<Bfs>(0);
  sys2.InitializeResults();
  RisGraphService<> service2(sys2);
  RpcServer server2(sys2, service2, socket_path_ + ".2");
  ASSERT_TRUE(server2.Start(/*max_clients=*/4));
  service2.Start();
  {
    RpcClient piped(/*window=*/128);
    ASSERT_TRUE(piped.Connect(socket_path_ + ".2"));
    for (const Update& u : stream) {
      ASSERT_EQ(piped.SubmitAsync(u), ClientStatus::kOk);
    }
    FlushResult fr = piped.Flush();
    ASSERT_TRUE(fr.ok);
    EXPECT_EQ(fr.completed, stream.size());
    EXPECT_EQ(fr.version, sys2.GetCurrentVersion());
    EXPECT_EQ(piped.shed_count(), 0u);  // kBlock policy: nothing shed
  }
  server2.Stop();
  service2.Stop();

  // Equivalence of final graph state: results and exact duplicate counts.
  for (VertexId v = 0; v < kVertices; ++v) {
    ASSERT_EQ(sys_->GetValue(bfs_, v), sys2.GetValue(bfs2, v)) << v;
  }
  for (const Update& u : stream) {
    ASSERT_EQ(
        sys_->store().EdgeCount(u.edge.src,
                                EdgeKey{u.edge.dst, u.edge.weight}),
        sys2.store().EdgeCount(u.edge.src,
                               EdgeKey{u.edge.dst, u.edge.weight}))
        << u.edge.src << "->" << u.edge.dst;
  }
}

TEST_F(RpcTest, PipelinedConcurrentClientsConvergeToOracle) {
  constexpr int kClients = 4;
  constexpr int kOpsEach = 300;
  std::vector<std::thread> threads;
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      RpcClient client(/*window=*/64);
      ASSERT_TRUE(client.Connect(socket_path_));
      for (int i = 0; i < kOpsEach; ++i) {
        VertexId a = (c * 29 + i * 11) % kVertices;
        VertexId b = (c * 13 + i * 17) % kVertices;
        Update u = i % 4 == 3 ? Update::DeleteEdge(a, b, 1)
                              : Update::InsertEdge(a, b, 1);
        ASSERT_NE(client.SubmitAsync(u), ClientStatus::kClosed);
      }
      FlushResult fr = client.Flush();
      ASSERT_TRUE(fr.ok);
      EXPECT_EQ(fr.completed, static_cast<uint64_t>(kOpsEach));
    });
  }
  for (auto& t : threads) t.join();

  auto ref = ReferenceCompute<Bfs>(sys_->store(), 0);
  for (VertexId v = 0; v < kVertices; ++v) {
    ASSERT_EQ(sys_->GetValue(bfs_, v), ref[v]) << v;
  }
}

//===--- kBusy load shedding -------------------------------------------------//

class RpcShedTest : public RpcTestBase {
 protected:
  static constexpr size_t kRing = 64;

  void SetUp() override {
    ServiceOptions opt;
    opt.ingest_shards = 1;  // one ring: deterministic capacity
    opt.ingest_shard_capacity = kRing;
    opt.overload_policy = OverloadPolicy::kShed;
    // The coordinator is NOT started: the ring absorbs exactly kRing
    // updates, then sheds — deterministically.
    Boot(opt, /*start_service=*/false);
  }

  static std::vector<Update> DistinctInserts(size_t n) {
    std::vector<Update> updates;
    for (size_t i = 0; i < n; ++i) {
      updates.push_back(
          Update::InsertEdge(i % 16, 16 + i / 16, /*w=*/1));  // all distinct
    }
    return updates;
  }

  /// Resubmits shed updates until the (now running) service absorbs all.
  void ResubmitUntilAccepted(RpcClient& client, std::vector<Update> todo) {
    int rounds = 0;
    while (!todo.empty()) {
      ASSERT_LT(rounds++, 1000) << "shed updates never got absorbed";
      client.SubmitBatch(todo.data(), todo.size());
      ASSERT_TRUE(client.WaitAcks());
      todo = client.TakeRejected();
      if (!todo.empty()) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    }
  }
};

TEST_F(RpcShedTest, WindowSaturationTriggersBusyPerFrame) {
  RpcClient client(/*window=*/512);  // window > 2*kRing: no client-side block
  ASSERT_TRUE(client.Connect(socket_path_));
  auto updates = DistinctInserts(2 * kRing);
  for (const Update& u : updates) {
    ASSERT_EQ(client.SubmitAsync(u), ClientStatus::kOk);  // busy comes by ack
  }
  ASSERT_TRUE(client.WaitAcks());
  // The ring held exactly kRing updates; the tail was shed in FIFO order.
  EXPECT_EQ(client.shed_count(), kRing);
  std::vector<Update> rejected = client.TakeRejected();
  ASSERT_EQ(rejected.size(), kRing);
  for (size_t i = 0; i < rejected.size(); ++i) {
    EXPECT_EQ(rejected[i], updates[kRing + i]) << i;
  }

  // Start the service, resubmit the shed tail, and drain everything.
  service_->Start();
  ResubmitUntilAccepted(client, rejected);
  FlushResult fr = client.Flush();
  ASSERT_TRUE(fr.ok);
  EXPECT_EQ(fr.completed, updates.size());
  for (const Update& u : updates) {
    EXPECT_EQ(sys_->store().EdgeCount(u.edge.src,
                                      EdgeKey{u.edge.dst, u.edge.weight}),
              1u);
  }
}

TEST_F(RpcShedTest, UpdateBatchReportsAcceptedPrefix) {
  RpcClient client(/*window=*/512);
  ASSERT_TRUE(client.Connect(socket_path_));
  auto updates = DistinctInserts(2 * kRing);
  // One kUpdateBatch frame carrying more than the ring holds: the kBusy ack
  // carries the accepted FIFO prefix; the client resurfaces the tail.
  EXPECT_EQ(client.SubmitBatch(updates.data(), updates.size()),
            updates.size());  // all queued for transmission
  ASSERT_TRUE(client.WaitAcks());
  EXPECT_EQ(client.shed_count(), kRing);
  std::vector<Update> rejected = client.TakeRejected();
  ASSERT_EQ(rejected.size(), kRing);
  EXPECT_EQ(rejected.front(), updates[kRing]);
  EXPECT_EQ(rejected.back(), updates.back());

  service_->Start();
  ResubmitUntilAccepted(client, rejected);
  FlushResult fr = client.Flush();
  ASSERT_TRUE(fr.ok);
  EXPECT_EQ(fr.completed, updates.size());
  auto ref = ReferenceCompute<Bfs>(sys_->store(), 0);
  for (VertexId v = 0; v < kVertices; ++v) {
    ASSERT_EQ(sys_->GetValue(bfs_, v), ref[v]) << v;
  }
}

TEST_F(RpcShedTest, BusyAckCarriesServerRetryAfterHint) {
  RpcClient client(/*window=*/512);
  ASSERT_TRUE(client.Connect(socket_path_));

  // Before any epoch has run the server has no drain-rate estimate: the
  // kBusy acks carry retry_after_micros = 0 and the client reports it.
  auto updates = DistinctInserts(2 * kRing);
  for (const Update& u : updates) {
    ASSERT_EQ(client.SubmitAsync(u), ClientStatus::kOk);
  }
  ASSERT_TRUE(client.WaitAcks());
  EXPECT_EQ(client.shed_count(), kRing);
  EXPECT_EQ(client.retry_after_micros(), 0u);

  // Drain through the service: busy epochs complete, so the pipeline forms
  // its busy-epoch EWMA and both client surfaces report a clamped hint.
  service_->Start();
  ResubmitUntilAccepted(client, client.TakeRejected());
  FlushResult fr = client.Flush();
  ASSERT_TRUE(fr.ok);
  uint32_t suggested = service_->pipeline().SuggestRetryAfterMicros();
  EXPECT_GE(suggested, 50u);
  EXPECT_LE(suggested, 20000u);
  SessionClient<> local(*sys_, service_->pipeline());
  EXPECT_EQ(local.retry_after_micros(), suggested);

  // Park the coordinator and overflow the ring again: the new kBusy acks
  // must now carry the measured hint over the wire.
  service_->Stop();
  auto more = DistinctInserts(2 * kRing);
  for (Update& u : more) u.edge.weight = 7;  // distinct from the first batch
  for (const Update& u : more) {
    ASSERT_EQ(client.SubmitAsync(u), ClientStatus::kOk);
  }
  ASSERT_TRUE(client.WaitAcks());
  EXPECT_GT(client.shed_count(), kRing);
  EXPECT_GE(client.retry_after_micros(), 50u);
  EXPECT_LE(client.retry_after_micros(), 20000u);
}

TEST_F(RpcShedTest, InProcessSubmitBatchHandsBackWholeShedTail) {
  // The in-process client must honor the same contract as the RPC ack path:
  // once a batch hits kBusy, the ENTIRE untried tail comes back through
  // TakeRejected() — not just the one update that observed the full ring.
  SessionClient<> local(*sys_, service_->pipeline());
  auto updates = DistinctInserts(2 * kRing);
  size_t accepted = local.SubmitBatch(updates.data(), updates.size());
  EXPECT_EQ(accepted, kRing);
  EXPECT_EQ(local.shed_count(), kRing);
  std::vector<Update> rejected = local.TakeRejected();
  ASSERT_EQ(rejected.size(), kRing);
  for (size_t i = 0; i < rejected.size(); ++i) {
    EXPECT_EQ(rejected[i], updates[kRing + i]) << i;
  }

  service_->Start();
  int rounds = 0;
  while (!rejected.empty()) {
    ASSERT_LT(rounds++, 1000);
    local.SubmitBatch(rejected.data(), rejected.size());
    rejected = local.TakeRejected();
    if (!rejected.empty()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  FlushResult fr = local.Flush();
  ASSERT_TRUE(fr.ok);
  EXPECT_EQ(fr.completed, updates.size());
  for (const Update& u : updates) {
    EXPECT_EQ(sys_->store().EdgeCount(u.edge.src,
                                      EdgeKey{u.edge.dst, u.edge.weight}),
              1u);
  }
}

//===--- One IClient surface over both transports ----------------------------//

void RunClientSmoke(IClient& client, size_t bfs, VertexId base) {
  EXPECT_TRUE(client.Ping());
  ASSERT_NE(client.InsEdge(0, base), kInvalidVersion);
  ASSERT_NE(client.Submit(Update::InsertEdge(base, base + 1, 1)),
            kInvalidVersion);
  std::vector<Update> txn = {Update::InsertEdge(base + 1, base + 2, 1),
                             Update::InsertEdge(base + 2, base + 3, 1)};
  ASSERT_NE(client.SubmitTxn(txn), kInvalidVersion);
  uint64_t val = 0;
  ASSERT_TRUE(client.GetValue(bfs, base + 3, &val));
  EXPECT_EQ(val, 4u);  // 0 -> base -> base+1 -> base+2 -> base+3

  // Pipelined extension of the same chain through the same interface.
  EXPECT_EQ(client.SubmitAsync(Update::InsertEdge(base + 3, base + 4, 1)),
            ClientStatus::kOk);
  FlushResult fr = client.Flush();
  ASSERT_TRUE(fr.ok);
  ASSERT_TRUE(client.GetValue(bfs, base + 4, &val));
  EXPECT_EQ(val, 5u);

  ParentEdge p;
  ASSERT_TRUE(client.GetParent(bfs, base + 1, &p));
  EXPECT_EQ(p.parent, base);
  VersionId cur = 0;
  ASSERT_TRUE(client.GetCurrentVersion(&cur));
  EXPECT_GT(cur, 0u);
  VertexId fresh = kInvalidVertex;
  ASSERT_NE(client.InsVertex(&fresh), kInvalidVersion);
  EXPECT_NE(fresh, kInvalidVertex);
  EXPECT_EQ(client.shed_count(), 0u);
}

TEST_F(RpcTestBase, InProcessAndRpcClientsShareOneSurface) {
  Boot({}, /*start_service=*/false);
  // The in-process client must open its session before the pipeline runs.
  SessionClient<> local(*sys_, service_->pipeline());
  service_->Start();
  RunClientSmoke(local, bfs_, /*base=*/10);

  RpcClient remote;
  ASSERT_TRUE(remote.Connect(socket_path_));
  RunClientSmoke(remote, bfs_, /*base=*/30);

  auto ref = ReferenceCompute<Bfs>(sys_->store(), 0);
  for (VertexId v = 0; v < kVertices; ++v) {
    ASSERT_EQ(sys_->GetValue(bfs_, v), ref[v]) << v;
  }
}

//===--- Correlation-ID demultiplexing (scripted out-of-order peer) ----------//

TEST(RpcClientProtocol, OutOfOrderResponsesMatchedByCorrelationId) {
  std::string path = "/tmp/risgraph_script_" + std::to_string(::getpid()) +
                     "_" + std::to_string(::time(nullptr)) + ".sock";
  int listener = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(listener, 0);
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  ::unlink(path.c_str());
  ASSERT_EQ(::bind(listener, reinterpret_cast<sockaddr*>(&addr),
                   sizeof(addr)),
            0);
  ASSERT_EQ(::listen(listener, 1), 0);

  // The scripted peer: ack the handshake, read four frames (three pipelined
  // submits + one blocking read), then answer them in REVERSE order — the
  // blocking read first, then the submits with a kBusy in the middle.
  std::thread peer([&] {
    int fd = ::accept(listener, nullptr, nullptr);
    ASSERT_GE(fd, 0);
    std::vector<uint8_t> frame;
    ASSERT_TRUE(ReadFrameRaw(fd, &frame));  // Hello
    ASSERT_GE(frame.size(), rpc::kRequestHeaderBytes);
    {
      std::vector<uint8_t> ack;
      rpc::Writer w(ack);
      rpc::WriteResponseHeader(w, 0, rpc::Status::kOk);
      w.U16(rpc::kProtocolVersion);
      ASSERT_TRUE(SendFrameRaw(fd, ack));
    }
    struct Seen {
      uint64_t corr;
      uint8_t op;
    };
    std::vector<Seen> seen;
    for (int i = 0; i < 4; ++i) {
      ASSERT_TRUE(ReadFrameRaw(fd, &frame));
      Seen s{};
      std::memcpy(&s.corr, frame.data(), 8);
      s.op = frame[8];
      seen.push_back(s);
    }
    EXPECT_EQ(seen[3].op, static_cast<uint8_t>(rpc::Op::kGetCurrentVersion));
    // Respond in reverse arrival order.
    {
      std::vector<uint8_t> resp;
      rpc::Writer w(resp);
      rpc::WriteResponseHeader(w, seen[3].corr, rpc::Status::kOk);
      w.U64(42);
      ASSERT_TRUE(SendFrameRaw(fd, resp));
    }
    const rpc::Status kStatuses[3] = {rpc::Status::kOk, rpc::Status::kBusy,
                                      rpc::Status::kOk};
    for (int i = 2; i >= 0; --i) {
      std::vector<uint8_t> resp;
      rpc::Writer w(resp);
      rpc::WriteResponseHeader(w, seen[i].corr, kStatuses[i]);
      ASSERT_TRUE(SendFrameRaw(fd, resp));
    }
    // Hold the connection open until the client is done asserting.
    ReadFrameRaw(fd, &frame);  // returns false at client Close
    ::close(fd);
  });

  RpcClient client(/*window=*/16);
  ASSERT_TRUE(client.Connect(path));
  Update u1 = Update::InsertEdge(1, 2, 1);
  Update u2 = Update::InsertEdge(3, 4, 1);
  Update u3 = Update::InsertEdge(5, 6, 1);
  ASSERT_EQ(client.SubmitAsync(u1), ClientStatus::kOk);
  ASSERT_EQ(client.SubmitAsync(u2), ClientStatus::kOk);
  ASSERT_EQ(client.SubmitAsync(u3), ClientStatus::kOk);
  VersionId cur = 0;
  ASSERT_TRUE(client.GetCurrentVersion(&cur));  // answered before the acks
  EXPECT_EQ(cur, 42u);
  ASSERT_TRUE(client.WaitAcks());
  EXPECT_EQ(client.shed_count(), 1u);  // the kBusy in the middle
  std::vector<Update> rejected = client.TakeRejected();
  ASSERT_EQ(rejected.size(), 1u);
  EXPECT_EQ(rejected[0], u2);  // matched by correlation ID, not order

  client.Close();
  peer.join();
  ::close(listener);
  ::unlink(path.c_str());
}

TEST(RpcClientProtocol, HandshakeRejectionSurfacesUnsupportedVersion) {
  std::string path = "/tmp/risgraph_script_rej_" +
                     std::to_string(::getpid()) + ".sock";
  int listener = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(listener, 0);
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  ::unlink(path.c_str());
  ASSERT_EQ(::bind(listener, reinterpret_cast<sockaddr*>(&addr),
                   sizeof(addr)),
            0);
  ASSERT_EQ(::listen(listener, 1), 0);
  std::thread peer([&] {
    int fd = ::accept(listener, nullptr, nullptr);
    ASSERT_GE(fd, 0);
    std::vector<uint8_t> frame;
    ASSERT_TRUE(ReadFrameRaw(fd, &frame));  // the Hello
    SendFrameRaw(
        fd, {static_cast<uint8_t>(rpc::Status::kUnsupportedVersion)});
    ::close(fd);
  });
  RpcClient client;
  EXPECT_FALSE(client.Connect(path));
  EXPECT_EQ(client.connect_status(), rpc::Status::kUnsupportedVersion);
  peer.join();
  ::close(listener);
  ::unlink(path.c_str());
}

}  // namespace
}  // namespace risgraph
