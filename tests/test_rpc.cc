// End-to-end tests of the RPC tier: server over a live service, real Unix-
// domain sockets, concurrent clients, malformed-input handling.

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstring>
#include <thread>
#include <vector>

#include "core/algorithm_api.h"
#include "core/reference.h"
#include "net/rpc_client.h"
#include "net/rpc_server.h"
#include "runtime/risgraph.h"
#include "runtime/service.h"

namespace risgraph {
namespace {

class RpcTest : public ::testing::Test {
 protected:
  static constexpr uint64_t kVertices = 256;

  void SetUp() override {
    socket_path_ = "/tmp/risgraph_rpc_" +
                   std::to_string(reinterpret_cast<uintptr_t>(this)) + ".sock";
    sys_ = std::make_unique<RisGraph<>>(kVertices);
    bfs_ = sys_->AddAlgorithm<Bfs>(0);
    sys_->InitializeResults();
    service_ = std::make_unique<RisGraphService<>>(*sys_);
    server_ = std::make_unique<RpcServer>(*sys_, *service_, socket_path_);
    ASSERT_TRUE(server_->Start(/*max_clients=*/32));
    service_->Start();
  }

  void TearDown() override {
    server_->Stop();
    service_->Stop();
  }

  std::string socket_path_;
  std::unique_ptr<RisGraph<>> sys_;
  size_t bfs_ = 0;
  std::unique_ptr<RisGraphService<>> service_;
  std::unique_ptr<RpcServer> server_;
};

TEST_F(RpcTest, PingAndBasicUpdates) {
  RpcClient client;
  ASSERT_TRUE(client.Connect(socket_path_));
  EXPECT_TRUE(client.Ping());

  VersionId v1 = client.InsEdge(0, 1);
  ASSERT_NE(v1, kInvalidVersion);
  VersionId v2 = client.InsEdge(1, 2);
  ASSERT_NE(v2, kInvalidVersion);
  EXPECT_GE(v2, v1);

  uint64_t dist = 0;
  ASSERT_TRUE(client.GetValue(bfs_, 2, &dist));
  EXPECT_EQ(dist, 2u);

  ParentEdge p;
  ASSERT_TRUE(client.GetParent(bfs_, 2, &p));
  EXPECT_EQ(p.parent, 1u);

  ASSERT_NE(client.DelEdge(1, 2), kInvalidVersion);
  ASSERT_TRUE(client.GetValue(bfs_, 2, &dist));
  EXPECT_EQ(dist, kInfWeight);
}

TEST_F(RpcTest, HistoricalReadsAndModifiedFeed) {
  RpcClient client;
  ASSERT_TRUE(client.Connect(socket_path_));
  client.InsEdge(0, 1);
  VersionId ver = client.InsEdge(1, 2);
  client.InsEdge(0, 2);  // improves 2 from distance 2 to 1

  VersionId cur = 0;
  ASSERT_TRUE(client.GetCurrentVersion(&cur));
  EXPECT_GT(cur, ver);

  uint64_t then = 0;
  ASSERT_TRUE(client.GetValueAt(bfs_, ver, 2, &then));
  EXPECT_EQ(then, 2u);
  uint64_t now = 0;
  ASSERT_TRUE(client.GetValue(bfs_, 2, &now));
  EXPECT_EQ(now, 1u);

  std::vector<VertexId> mods;
  ASSERT_TRUE(client.GetModified(bfs_, cur, &mods));
  ASSERT_EQ(mods.size(), 1u);
  EXPECT_EQ(mods[0], 2u);

  EXPECT_TRUE(client.ReleaseHistory(cur));
}

TEST_F(RpcTest, VertexLifecycle) {
  RpcClient client;
  ASSERT_TRUE(client.Connect(socket_path_));
  VertexId fresh = kInvalidVertex;
  ASSERT_NE(client.InsVertex(&fresh), kInvalidVersion);
  EXPECT_EQ(fresh, kVertices);  // first id beyond the preallocated range
  EXPECT_NE(client.DelVertex(fresh), kInvalidVersion);
}

TEST_F(RpcTest, TransactionsAreAtomic) {
  RpcClient client;
  ASSERT_TRUE(client.Connect(socket_path_));
  std::vector<Update> txn = {Update::InsertEdge(0, 10, 1),
                             Update::InsertEdge(10, 11, 1),
                             Update::InsertEdge(11, 12, 1)};
  VersionId ver = client.TxnUpdates(txn);
  ASSERT_NE(ver, kInvalidVersion);
  std::vector<VertexId> mods;
  ASSERT_TRUE(client.GetModified(bfs_, ver, &mods));
  EXPECT_EQ(mods.size(), 3u);  // one version covers the whole transaction
}

TEST_F(RpcTest, ErrorsForBadArguments) {
  RpcClient client;
  ASSERT_TRUE(client.Connect(socket_path_));
  uint64_t out = 0;
  EXPECT_FALSE(client.GetValue(/*algo=*/99, 0, &out));   // unknown algorithm
  EXPECT_FALSE(client.GetValue(bfs_, 1 << 20, &out));    // vertex range
  EXPECT_EQ(client.InsEdge(1 << 20, 0), kInvalidVersion);
  EXPECT_TRUE(client.Ping());  // the connection survives semantic errors
}

TEST_F(RpcTest, MalformedFrameDropsConnectionOnly) {
  // Hand-roll a hostile client: a frame whose opcode is garbage.
  int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, socket_path_.c_str(),
               sizeof(addr.sun_path) - 1);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  uint32_t len = 3;
  uint8_t junk[3] = {0xff, 0xee, 0xdd};
  ASSERT_EQ(::write(fd, &len, 4), 4);
  ASSERT_EQ(::write(fd, junk, 3), 3);
  // Server answers kBadRequest, then closes.
  uint32_t rlen = 0;
  ASSERT_EQ(::read(fd, &rlen, 4), 4);
  ASSERT_EQ(rlen, 1u);
  uint8_t status = 0;
  ASSERT_EQ(::read(fd, &status, 1), 1);
  EXPECT_EQ(status, static_cast<uint8_t>(rpc::Status::kBadRequest));
  uint8_t byte;
  EXPECT_EQ(::read(fd, &byte, 1), 0);  // EOF: connection dropped
  ::close(fd);

  // The server is still healthy for well-behaved clients.
  RpcClient client;
  ASSERT_TRUE(client.Connect(socket_path_));
  EXPECT_TRUE(client.Ping());
}

TEST_F(RpcTest, OversizedFrameIsRejected) {
  int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, socket_path_.c_str(),
               sizeof(addr.sun_path) - 1);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  uint32_t len = rpc::kMaxFrameBytes + 1;
  ASSERT_EQ(::write(fd, &len, 4), 4);
  uint8_t byte;
  EXPECT_LE(::read(fd, &byte, 1), 0);  // dropped without reading the body
  ::close(fd);
}

TEST_F(RpcTest, ConcurrentClientsConvergeToOracle) {
  constexpr int kClients = 8;
  constexpr int kOpsEach = 150;
  std::vector<std::thread> threads;
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      RpcClient client;
      ASSERT_TRUE(client.Connect(socket_path_));
      for (int i = 0; i < kOpsEach; ++i) {
        VertexId a = (c * 31 + i * 7) % kVertices;
        VertexId b = (c * 17 + i * 13) % kVertices;
        if (i % 3 == 2) {
          client.DelEdge(a, b);
        } else {
          client.InsEdge(a, b);
        }
      }
    });
  }
  for (auto& t : threads) t.join();

  EXPECT_EQ(server_->connections_served(), static_cast<uint64_t>(kClients));
  EXPECT_GE(server_->requests_served(),
            static_cast<uint64_t>(kClients * kOpsEach));

  auto ref = ReferenceCompute<Bfs>(sys_->store(), 0);
  for (VertexId v = 0; v < kVertices; ++v) {
    ASSERT_EQ(sys_->GetValue(bfs_, v), ref[v]) << v;
  }
}

}  // namespace
}  // namespace risgraph
