// End-to-end tests of the embedded Interactive API (paper Table 1): version
// semantics, transactions, multi-algorithm maintenance, WAL recovery, and the
// paper's Figure 2 fraud-detection walk-through.

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "core/algorithm_api.h"
#include "runtime/risgraph.h"
#include "wal/wal.h"

namespace risgraph {
namespace {

TEST(RisGraphApi, VersionsBumpOnlyOnResultChanges) {
  RisGraph<> sys(4);
  size_t bfs = sys.AddAlgorithm<Bfs>(0);
  sys.InitializeResults();
  EXPECT_EQ(sys.GetCurrentVersion(), 0u);

  VersionId v1 = sys.InsEdge(0, 1);  // unsafe: reaches vertex 1
  EXPECT_EQ(v1, 1u);
  VersionId v2 = sys.InsEdge(1, 0);  // safe: cannot improve the root
  EXPECT_EQ(v2, 1u);                 // no new version
  VersionId v3 = sys.DelEdge(1, 0);  // safe: non-tree edge
  EXPECT_EQ(v3, 1u);
  VersionId v4 = sys.DelEdge(0, 1);  // unsafe: tree edge
  EXPECT_EQ(v4, 2u);
  EXPECT_EQ(sys.GetValue(bfs, 1), kInfWeight);
}

TEST(RisGraphApi, VersionedReadsAcrossUpdates) {
  RisGraph<> sys(4);
  size_t bfs = sys.AddAlgorithm<Bfs>(0);
  sys.InitializeResults();
  sys.InsEdge(0, 1);              // version 1
  sys.InsEdge(1, 2);              // version 2
  VersionId v3 = sys.InsEdge(0, 2);  // version 3: improves 2
  EXPECT_EQ(v3, 3u);
  EXPECT_EQ(sys.GetValue(bfs, 2, 2), 2u);
  EXPECT_EQ(sys.GetValue(bfs, 3, 2), 1u);
  EXPECT_EQ(sys.GetParent(bfs, 2, 2).parent, 1u);
  EXPECT_EQ(sys.GetParent(bfs, 3, 2).parent, 0u);
  EXPECT_EQ(sys.GetModifiedVertices(bfs, 3), std::vector<VertexId>{2});
}

TEST(RisGraphApi, TransactionIsOneVersion) {
  RisGraph<> sys(6);
  size_t bfs = sys.AddAlgorithm<Bfs>(0);
  sys.InitializeResults();
  VersionId ver = sys.TxnUpdates({Update::InsertEdge(0, 1),
                                  Update::InsertEdge(1, 2),
                                  Update::InsertEdge(2, 3)});
  EXPECT_EQ(ver, 1u);  // one atomic version for the whole batch
  EXPECT_EQ(sys.GetValue(bfs, 3), 3u);
  auto mods = sys.GetModifiedVertices(bfs, 1);
  EXPECT_EQ(mods.size(), 3u);
  // Versioned read below the txn sees nothing.
  EXPECT_EQ(sys.GetValue(bfs, 0, 3), kInfWeight);
}

TEST(RisGraphApi, TxnSafetyClassification) {
  RisGraph<> sys(4);
  sys.AddAlgorithm<Bfs>(0);
  sys.InitializeResults();
  sys.InsEdge(0, 1);
  sys.InsEdge(0, 1);  // duplicate: count 2
  // Deleting one duplicate is safe; deleting both in one txn is not (the
  // second removal kills the tree edge).
  EXPECT_TRUE(sys.IsTxnSafe({Update::DeleteEdge(0, 1)}));
  EXPECT_FALSE(
      sys.IsTxnSafe({Update::DeleteEdge(0, 1), Update::DeleteEdge(0, 1)}));
  // Insert-then-delete of a fresh safe edge stays safe.
  EXPECT_TRUE(sys.IsTxnSafe(
      {Update::InsertEdge(1, 0), Update::DeleteEdge(1, 0)}));
}

TEST(RisGraphApi, MultipleAlgorithmsClassifyConjunctively) {
  RisGraph<> sys(4);
  size_t bfs = sys.AddAlgorithm<Bfs>(0);
  size_t sswp = sys.AddAlgorithm<Sswp>(0);
  sys.InitializeResults();
  sys.InsEdge(0, 1, 10);
  sys.InsEdge(1, 2, 3);  // narrow road: SSWP(2) = 3, BFS(2) = 2
  EXPECT_EQ(sys.GetValue(bfs, 2), 2u);
  EXPECT_EQ(sys.GetValue(sswp, 2), 3u);
  // A wider parallel road: safe for BFS (hop count unchanged), unsafe for
  // SSWP (widens the path) — the conjunction makes the update unsafe.
  EXPECT_TRUE(sys.algorithm(bfs).IsInsertSafe(Edge{1, 2, 50}));
  EXPECT_FALSE(sys.algorithm(sswp).IsInsertSafe(Edge{1, 2, 50}));
  EXPECT_FALSE(sys.IsUpdateSafe(Update::InsertEdge(1, 2, 50)));
  VersionId before = sys.GetCurrentVersion();
  sys.InsEdge(1, 2, 50);
  EXPECT_EQ(sys.GetValue(sswp, 2), 10u);  // min(50, 10): widened
  EXPECT_EQ(sys.GetValue(bfs, 2), 2u);    // unchanged for BFS
  EXPECT_EQ(sys.GetCurrentVersion(), before + 1);
}

TEST(RisGraphApi, VertexLifecycle) {
  RisGraph<> sys(2);
  size_t bfs = sys.AddAlgorithm<Bfs>(0);
  sys.InitializeResults();
  VertexId v = kInvalidVertex;
  sys.InsVertex(&v);
  EXPECT_EQ(v, 2u);
  EXPECT_EQ(sys.GetValue(bfs, v), kInfWeight);
  sys.InsEdge(0, v);
  EXPECT_EQ(sys.GetValue(bfs, v), 1u);
  EXPECT_EQ(sys.DelVertex(v), kInvalidVersion);  // still has an edge
  sys.DelEdge(0, v);
  EXPECT_NE(sys.DelVertex(v), kInvalidVersion);
}

TEST(RisGraphApi, WalRecoveryRebuildsIdenticalState) {
  std::string path = ::testing::TempDir() + "risgraph_api_recovery.log";
  std::remove(path.c_str());
  std::vector<uint64_t> expected;
  {
    RisGraphOptions opt;
    opt.wal_path = path;
    RisGraph<> sys(8, opt);
    size_t sssp = sys.AddAlgorithm<Sssp>(0);
    sys.InitializeResults();
    sys.InsEdge(0, 1, 3);
    sys.InsEdge(1, 2, 4);
    sys.InsEdge(0, 2, 9);
    sys.DelEdge(1, 2, 4);
    sys.TxnUpdates({Update::InsertEdge(2, 3, 1), Update::InsertEdge(3, 4, 1)});
    for (VertexId v = 0; v < 8; ++v) {
      expected.push_back(sys.GetValue(sssp, v));
    }
  }
  // Recover: replay the log into a fresh instance (no WAL to avoid
  // re-appending) and compare results.
  RisGraph<> recovered(8);
  size_t sssp = recovered.AddAlgorithm<Sssp>(0);
  recovered.InitializeResults();
  uint64_t n = WriteAheadLog::Replay(path, [&](const WalRecord& r) {
    switch (r.update.kind) {
      case UpdateKind::kInsertEdge:
        recovered.InsEdge(r.update.edge.src, r.update.edge.dst,
                          r.update.edge.weight);
        break;
      case UpdateKind::kDeleteEdge:
        recovered.DelEdge(r.update.edge.src, r.update.edge.dst,
                          r.update.edge.weight);
        break;
      case UpdateKind::kInsertVertex:
        recovered.InsVertex(nullptr);
        break;
      case UpdateKind::kDeleteVertex:
        recovered.DelVertex(r.update.edge.src);
        break;
    }
  });
  EXPECT_EQ(n, 6u);
  for (VertexId v = 0; v < 8; ++v) {
    EXPECT_EQ(recovered.GetValue(sssp, v), expected[v]) << v;
  }
  std::remove(path.c_str());
}

// The paper's Figure 2: detecting suspicious users by SSSP — users within
// distance 2 of a known-malicious root are flagged. Per-update analysis
// catches vertex 4 the moment the shortcut appears (version 1); batch
// analysis that skips to version 2 would miss it.
TEST(RisGraphApi, Figure2SuspiciousUserDetection) {
  RisGraph<> sys(6);
  size_t sssp = sys.AddAlgorithm<Sssp>(0);
  sys.InitializeResults();
  // Version 0 graph: the malicious root 0 trusts 1 and 2; 5 hangs off 2;
  // 4 is far away via 1.
  sys.TxnUpdates({Update::InsertEdge(0, 1, 1), Update::InsertEdge(0, 2, 1),
                  Update::InsertEdge(2, 5, 1), Update::InsertEdge(1, 4, 4)});
  VersionId v0 = sys.GetCurrentVersion();
  EXPECT_EQ(sys.GetValue(sssp, v0, 4), 5u);  // not suspicious yet

  // Version 1: a new trust edge 5 -> 4 puts 4 within distance 2... wait —
  // dist(5)=2, so dist(4) becomes 3 via 5? No: weight 1 edge from 5 and
  // dist(5)=2 gives 3. Use the edge from 2 instead (dist 1 + 1 = 2).
  VersionId v1 = sys.InsEdge(2, 4, 1);
  EXPECT_EQ(sys.GetValue(sssp, v1, 4), 2u);  // SUSPICIOUS at version 1
  auto flagged = sys.GetModifiedVertices(sssp, v1);
  EXPECT_EQ(flagged, std::vector<VertexId>{4});

  // Version 2: the edge disappears again — 4 looks innocent now. A batch
  // system coalescing v1+v2 would never have flagged it.
  VersionId v2 = sys.DelEdge(2, 4, 1);
  EXPECT_EQ(sys.GetValue(sssp, v2, 4), 5u);
  // But the per-update history still shows the suspicious moment:
  EXPECT_EQ(sys.GetValue(sssp, v1, 4), 2u);
}

TEST(RisGraphApi, ReleaseHistoryKeepsRecentWindow) {
  RisGraph<> sys(4);
  size_t bfs = sys.AddAlgorithm<Bfs>(0);
  sys.InitializeResults();
  sys.InsEdge(0, 1);
  sys.InsEdge(1, 2);
  sys.InsEdge(2, 3);
  sys.ReleaseHistory(2);
  EXPECT_EQ(sys.GetValue(bfs, 3, 3), 3u);
  EXPECT_EQ(sys.GetValue(bfs, 2, 2), 2u);  // at the floor: still answerable
}

TEST(RisGraphApi, MemoryReporting) {
  RisGraph<> sys(64);
  sys.AddAlgorithm<Bfs>(0);
  sys.InitializeResults();
  size_t before = sys.MemoryBytes();
  for (uint64_t i = 0; i < 63; ++i) sys.InsEdge(i, i + 1);
  EXPECT_GT(sys.MemoryBytes(), before);
}

}  // namespace
}  // namespace risgraph
