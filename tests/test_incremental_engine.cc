#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "core/algorithm_api.h"
#include "core/incremental_engine.h"
#include "core/reference.h"
#include "parallel/thread_pool.h"
#include "storage/graph_store.h"

namespace risgraph {
namespace {

// Applies an edge insertion through store + engine, like the runtime does.
template <typename Engine>
void Insert(DefaultGraphStore& store, Engine& engine, VertexId s, VertexId d,
            Weight w = 1) {
  store.InsertEdge(Edge{s, d, w});
  engine.OnInsert(Edge{s, d, w});
}

template <typename Engine>
void Delete(DefaultGraphStore& store, Engine& engine, VertexId s, VertexId d,
            Weight w = 1) {
  DeleteResult r = store.DeleteEdge(Edge{s, d, w});
  engine.OnDelete(Edge{s, d, w}, r);
}

TEST(IncrementalBfs, ChainThenShortcut) {
  DefaultGraphStore store(5);
  IncrementalEngine<Bfs> engine(store, /*root=*/0);
  Insert(store, engine, 0, 1);
  Insert(store, engine, 1, 2);
  Insert(store, engine, 2, 3);
  EXPECT_EQ(engine.Value(0), 0u);
  EXPECT_EQ(engine.Value(1), 1u);
  EXPECT_EQ(engine.Value(2), 2u);
  EXPECT_EQ(engine.Value(3), 3u);
  EXPECT_FALSE(engine.IsReached(4));

  // A shortcut improves vertex 3 and re-parents it.
  Insert(store, engine, 0, 3);
  EXPECT_EQ(engine.Value(3), 1u);
  EXPECT_EQ(engine.Parent(3).parent, 0u);
  EXPECT_EQ(engine.LastModifiedVertices(), std::vector<VertexId>{3});
}

TEST(IncrementalBfs, InsertionPropagatesDownstream) {
  DefaultGraphStore store(6);
  IncrementalEngine<Bfs> engine(store, 0);
  Insert(store, engine, 0, 1);
  Insert(store, engine, 1, 2);
  Insert(store, engine, 2, 3);
  Insert(store, engine, 3, 4);
  // Shortcut to 2 improves 2, 3 and 4 in one update.
  Insert(store, engine, 0, 2);
  EXPECT_EQ(engine.Value(2), 1u);
  EXPECT_EQ(engine.Value(3), 2u);
  EXPECT_EQ(engine.Value(4), 3u);
  std::vector<VertexId> mod_ids = engine.LastModifiedVertices();
  std::set<VertexId> modified(mod_ids.begin(),
                              mod_ids.end());
  EXPECT_EQ(modified, (std::set<VertexId>{2, 3, 4}));
}

TEST(IncrementalSssp, DeleteTreeEdgeReroutesThroughAlternative) {
  DefaultGraphStore store(4);
  IncrementalEngine<Sssp> engine(store, 0);
  Insert(store, engine, 0, 1, 1);
  Insert(store, engine, 0, 2, 1);
  Insert(store, engine, 1, 3, 1);  // dist(3) = 2 via 1
  Insert(store, engine, 2, 3, 5);  // alternative, dist 6
  EXPECT_EQ(engine.Value(3), 2u);
  EXPECT_EQ(engine.Parent(3).parent, 1u);

  Delete(store, engine, 1, 3, 1);
  EXPECT_EQ(engine.Value(3), 6u);
  EXPECT_EQ(engine.Parent(3).parent, 2u);
  EXPECT_EQ(engine.LastModifiedVertices(), std::vector<VertexId>{3});
}

TEST(IncrementalSssp, DeleteDisconnectsSubtree) {
  DefaultGraphStore store(4);
  IncrementalEngine<Sssp> engine(store, 0);
  Insert(store, engine, 0, 1, 2);
  Insert(store, engine, 1, 2, 3);
  Insert(store, engine, 2, 3, 4);
  EXPECT_EQ(engine.Value(3), 9u);
  Delete(store, engine, 0, 1, 2);
  for (VertexId v : {1, 2, 3}) {
    EXPECT_FALSE(engine.IsReached(v)) << v;
    EXPECT_EQ(engine.Parent(v).parent, kInvalidVertex) << v;
  }
  std::vector<VertexId> mod_ids = engine.LastModifiedVertices();
  std::set<VertexId> modified(mod_ids.begin(),
                              mod_ids.end());
  EXPECT_EQ(modified, (std::set<VertexId>{1, 2, 3}));
  // Re-inserting restores the distances.
  Insert(store, engine, 0, 1, 2);
  EXPECT_EQ(engine.Value(3), 9u);
}

TEST(IncrementalSssp, DuplicateEdgesKeepTreeAlive) {
  DefaultGraphStore store(3);
  IncrementalEngine<Sssp> engine(store, 0);
  Insert(store, engine, 0, 1, 4);
  Insert(store, engine, 0, 1, 4);  // duplicate of the tree edge
  EXPECT_EQ(engine.Value(1), 4u);

  // Deleting one duplicate must not invalidate anything.
  EXPECT_TRUE(engine.IsDeleteSafe(Edge{0, 1, 4}, /*removes_last=*/false));
  Delete(store, engine, 0, 1, 4);
  EXPECT_EQ(engine.Value(1), 4u);
  EXPECT_TRUE(engine.LastModified().empty());

  // Deleting the last duplicate disconnects vertex 1.
  EXPECT_FALSE(engine.IsDeleteSafe(Edge{0, 1, 4}, /*removes_last=*/true));
  Delete(store, engine, 0, 1, 4);
  EXPECT_FALSE(engine.IsReached(1));
}

TEST(IncrementalSssp, ParallelEdgesDifferentWeights) {
  DefaultGraphStore store(2);
  IncrementalEngine<Sssp> engine(store, 0);
  Insert(store, engine, 0, 1, 7);
  Insert(store, engine, 0, 1, 3);  // better parallel edge
  EXPECT_EQ(engine.Value(1), 3u);
  EXPECT_EQ(engine.Parent(1).weight, 3u);
  // Deleting the *non-tree* parallel edge is safe and changes nothing.
  EXPECT_TRUE(engine.IsDeleteSafe(Edge{0, 1, 7}, true));
  Delete(store, engine, 0, 1, 7);
  EXPECT_EQ(engine.Value(1), 3u);
  // Deleting the tree edge falls back... to nothing (7 is gone).
  Delete(store, engine, 0, 1, 3);
  EXPECT_FALSE(engine.IsReached(1));
}

TEST(IncrementalSswp, WidestPathMaintenance) {
  DefaultGraphStore store(3);
  IncrementalEngine<Sswp> engine(store, 0);
  Insert(store, engine, 0, 1, 5);
  Insert(store, engine, 1, 2, 3);
  EXPECT_EQ(engine.Value(1), 5u);
  EXPECT_EQ(engine.Value(2), 3u);  // min(5, 3)
  Insert(store, engine, 0, 2, 4);  // wider direct road
  EXPECT_EQ(engine.Value(2), 4u);
  Delete(store, engine, 0, 2, 4);
  EXPECT_EQ(engine.Value(2), 3u);
}

TEST(IncrementalWcc, MergeAndSplitComponents) {
  DefaultGraphStore store(6);
  IncrementalEngine<Wcc> engine(store, 0);
  Insert(store, engine, 0, 1);
  Insert(store, engine, 2, 3);
  Insert(store, engine, 3, 4);
  EXPECT_EQ(engine.Value(1), 0u);
  EXPECT_EQ(engine.Value(3), 2u);
  EXPECT_EQ(engine.Value(4), 2u);
  EXPECT_EQ(engine.Value(5), 5u);  // isolated

  // Bridge the components (undirected label propagation).
  Insert(store, engine, 4, 1);
  for (VertexId v : {0, 1, 2, 3, 4}) EXPECT_EQ(engine.Value(v), 0u) << v;

  // Cut the bridge: the {2,3,4} side gets its own min label back.
  Delete(store, engine, 4, 1);
  EXPECT_EQ(engine.Value(0), 0u);
  EXPECT_EQ(engine.Value(1), 0u);
  for (VertexId v : {2, 3, 4}) EXPECT_EQ(engine.Value(v), 2u) << v;
}

TEST(IncrementalWcc, ReverseDirectionEdgeAlsoConnects) {
  DefaultGraphStore store(3);
  IncrementalEngine<Wcc> engine(store, 0);
  Insert(store, engine, 2, 0);  // edge points *into* the smaller label
  EXPECT_EQ(engine.Value(2), 0u);
  Delete(store, engine, 2, 0);
  EXPECT_EQ(engine.Value(2), 2u);
}

TEST(Classification, InsertSafety) {
  DefaultGraphStore store(4);
  IncrementalEngine<Bfs> engine(store, 0);
  Insert(store, engine, 0, 1);
  Insert(store, engine, 1, 2);
  // 1 -> 2 exists; another edge 0 -> 2 would improve 2: unsafe.
  EXPECT_FALSE(engine.IsInsertSafe(Edge{0, 2, 1}));
  // 2 -> 1 cannot improve 1 (would give distance 3 > 1): safe.
  EXPECT_TRUE(engine.IsInsertSafe(Edge{2, 1, 1}));
  // Edge from an unreached vertex is always safe.
  EXPECT_TRUE(engine.IsInsertSafe(Edge{3, 1, 1}));
  // Edge *to* an unreached vertex from a reached one: unsafe.
  EXPECT_FALSE(engine.IsInsertSafe(Edge{1, 3, 1}));
}

TEST(Classification, DeleteSafety) {
  DefaultGraphStore store(4);
  IncrementalEngine<Bfs> engine(store, 0);
  Insert(store, engine, 0, 1);
  Insert(store, engine, 0, 2);
  Insert(store, engine, 1, 3);
  Insert(store, engine, 2, 3);  // non-tree (3 already reached via 1)
  EXPECT_EQ(engine.Parent(3).parent, 1u);
  EXPECT_TRUE(engine.IsDeleteSafe(Edge{2, 3, 1}, true));    // non-tree
  EXPECT_FALSE(engine.IsDeleteSafe(Edge{1, 3, 1}, true));   // tree edge
  EXPECT_TRUE(engine.IsDeleteSafe(Edge{1, 3, 1}, false));   // duplicate left
}

TEST(Classification, SafeInsertChangesNothing) {
  DefaultGraphStore store(4);
  IncrementalEngine<Bfs> engine(store, 0);
  Insert(store, engine, 0, 1);
  Insert(store, engine, 1, 2);
  ASSERT_TRUE(engine.IsInsertSafe(Edge{2, 1, 1}));
  std::vector<uint64_t> before;
  for (VertexId v = 0; v < 4; ++v) before.push_back(engine.Value(v));
  Insert(store, engine, 2, 1);
  for (VertexId v = 0; v < 4; ++v) EXPECT_EQ(engine.Value(v), before[v]);
  EXPECT_TRUE(engine.LastModified().empty());
}

TEST(Engine, ResetMatchesReference) {
  DefaultGraphStore store(8);
  IncrementalEngine<Sssp> engine(store, 0);
  // Build a little diamond mesh without engine maintenance, then Reset.
  store.InsertEdge(Edge{0, 1, 2});
  store.InsertEdge(Edge{0, 2, 1});
  store.InsertEdge(Edge{1, 3, 1});
  store.InsertEdge(Edge{2, 3, 5});
  store.InsertEdge(Edge{3, 4, 1});
  store.InsertEdge(Edge{2, 5, 2});
  engine.Reset(0);
  auto ref = ReferenceCompute<Sssp>(store, 0);
  for (VertexId v = 0; v < 8; ++v) EXPECT_EQ(engine.Value(v), ref[v]) << v;
}

TEST(Engine, VertexGrowth) {
  DefaultGraphStore store(2);
  IncrementalEngine<Bfs> engine(store, 0);
  Insert(store, engine, 0, 1);
  VertexId v = store.AddVertex();
  engine.SyncVertexCount();
  EXPECT_EQ(engine.NumVertices(), 3u);
  EXPECT_FALSE(engine.IsReached(v));
  Insert(store, engine, 1, v);
  EXPECT_EQ(engine.Value(v), 2u);
}

TEST(Engine, RootChange) {
  DefaultGraphStore store(3);
  IncrementalEngine<Bfs> engine(store, 0);
  Insert(store, engine, 0, 1);
  Insert(store, engine, 1, 2);
  engine.Reset(2);
  EXPECT_EQ(engine.Value(2), 0u);
  EXPECT_FALSE(engine.IsReached(0));
}

TEST(Engine, SelfLoopsAreInert) {
  DefaultGraphStore store(2);
  IncrementalEngine<Sssp> engine(store, 0);
  Insert(store, engine, 0, 0, 5);
  Insert(store, engine, 0, 1, 3);
  Insert(store, engine, 1, 1, 0);
  EXPECT_EQ(engine.Value(0), 0u);
  EXPECT_EQ(engine.Value(1), 3u);
  Delete(store, engine, 0, 0, 5);
  Delete(store, engine, 1, 1, 0);
  EXPECT_EQ(engine.Value(1), 3u);
}

// Forced vertex-parallel and edge-parallel must produce identical results.
TEST(Engine, ParallelModesAgree) {
  auto run = [](ParallelMode mode) {
    DefaultGraphStore store(64);
    EngineOptions opt;
    opt.mode = mode;
    opt.sequential_edge_threshold = 0;  // force the parallel kernels
    IncrementalEngine<Bfs> engine(store, 0, opt);
    // A hub-heavy graph.
    for (VertexId v = 1; v < 64; ++v) Insert(store, engine, 0, v);
    for (VertexId v = 1; v < 32; ++v) Insert(store, engine, v, v + 32);
    Delete(store, engine, 0, 1);
    std::vector<uint64_t> vals;
    for (VertexId v = 0; v < 64; ++v) vals.push_back(engine.Value(v));
    return vals;
  };
  auto vp = run(ParallelMode::kVertexParallel);
  auto ep = run(ParallelMode::kEdgeParallel);
  auto hy = run(ParallelMode::kHybrid);
  EXPECT_EQ(vp, ep);
  EXPECT_EQ(vp, hy);
}

}  // namespace
}  // namespace risgraph
