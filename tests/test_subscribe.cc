// The continuous-query subsystem (src/subscribe/): delivery-queue
// semantics, filter matching, the epoch-commit -> notification path on both
// transports, overload coalescing (bounded memory, unaffected pipeline),
// and the property the design hangs on — notification streams are
// deterministic and shard-count invariant: the same workload driven at
// ingest_shards 1, 2 and 4, in-process or over RPC, produces bit-identical
// per-subscription notification sequences (extending PR 4's invariance
// contract to pushed results).

#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "core/algorithm_api.h"
#include "ingest/epoch_pipeline.h"
#include "net/rpc_client.h"
#include "net/rpc_server.h"
#include "parallel/thread_pool.h"
#include "rpc_test_util.h"
#include "runtime/client.h"
#include "runtime/risgraph.h"
#include "runtime/service.h"
#include "shard/sharded_store.h"
#include "subscribe/delivery_queue.h"
#include "subscribe/publisher.h"
#include "subscribe/registry.h"
#include "workload/rmat.h"
#include "workload/update_stream.h"

namespace risgraph {
namespace {

Notification MakeNotification(uint64_t sub, uint64_t algo, VersionId ver,
                              VertexId v, uint64_t oldv, uint64_t newv) {
  return Notification{sub, algo, ver, v, oldv, newv};
}

//===--- DeliveryQueue -------------------------------------------------------//

TEST(DeliveryQueueTest, FifoUnderCapacity) {
  DeliveryQueue q(4);
  for (uint64_t i = 0; i < 4; ++i) {
    q.Push(MakeNotification(1, 0, i + 1, i, 0, i));
  }
  std::vector<Notification> out;
  EXPECT_EQ(q.PopInto(&out, SIZE_MAX), 4u);
  for (uint64_t i = 0; i < 4; ++i) {
    EXPECT_EQ(out[i].version, i + 1);
    EXPECT_EQ(out[i].vertex, i);
  }
  EXPECT_TRUE(q.Empty());
  EXPECT_EQ(q.overwritten(), 0u);
}

TEST(DeliveryQueueTest, OverflowCoalescesToLatestValuePerVertex) {
  DeliveryQueue q(2);
  // Two buffer in order; everything after folds to latest-per-(algo,vertex).
  q.Push(MakeNotification(1, 0, 1, 10, 0, 100));
  q.Push(MakeNotification(1, 0, 2, 11, 0, 200));
  for (uint64_t round = 0; round < 50; ++round) {
    q.Push(MakeNotification(1, 0, 3 + round, 12, round, round + 1));
    q.Push(MakeNotification(1, 0, 3 + round, 13, round, round * 2));
  }
  // Memory is bounded by capacity + distinct keys, not by the 100-push
  // backlog.
  EXPECT_EQ(q.Size(), 4u);
  EXPECT_EQ(q.overwritten(), 98u);

  std::vector<Notification> out;
  q.PopInto(&out, SIZE_MAX);
  ASSERT_EQ(out.size(), 4u);
  // FIFO prefix first, then coalesced survivors in (algo, vertex) order,
  // each carrying the LATEST value.
  EXPECT_EQ(out[0].vertex, 10u);
  EXPECT_EQ(out[1].vertex, 11u);
  EXPECT_EQ(out[2].vertex, 12u);
  EXPECT_EQ(out[2].new_value, 50u);
  EXPECT_EQ(out[3].vertex, 13u);
  EXPECT_EQ(out[3].new_value, 98u);

  // Fully drained => back to the in-order regime.
  q.Push(MakeNotification(1, 0, 99, 7, 0, 7));
  out.clear();
  EXPECT_EQ(q.PopInto(&out, SIZE_MAX), 1u);
  EXPECT_EQ(out[0].vertex, 7u);
}

TEST(DeliveryQueueTest, CoalescedRegimePersistsUntilDrained) {
  DeliveryQueue q(1);
  q.Push(MakeNotification(1, 0, 1, 0, 0, 1));
  q.Push(MakeNotification(1, 0, 2, 1, 0, 2));  // overflow -> coalesced
  std::vector<Notification> out;
  q.PopInto(&out, 1);  // fifo drained, coalesced survivor remains
  // New pushes must keep coalescing (delivery order stays version-monotone
  // per vertex), even though the fifo has room again.
  q.Push(MakeNotification(1, 0, 3, 2, 0, 3));
  out.clear();
  q.PopInto(&out, SIZE_MAX);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].vertex, 1u);
  EXPECT_EQ(out[1].vertex, 2u);
}

//===--- Filters -------------------------------------------------------------//

TEST(SubscriptionFilterTest, VertexSetAndPredicates) {
  SubscriptionFilter f =
      SubscriptionFilter::WatchVertices(0, {5, 3, 3, 9});
  f.Normalize();
  EXPECT_EQ(f.vertices, (std::vector<VertexId>{3, 5, 9}));
  EXPECT_TRUE(f.Matches(3, 0, 1));
  EXPECT_FALSE(f.Matches(4, 0, 1));

  SubscriptionFilter below =
      SubscriptionFilter::WatchAll(0, NotifyPredicate::kValueAtMost, 2);
  EXPECT_TRUE(below.Matches(1, 100, 2));
  EXPECT_FALSE(below.Matches(1, 100, 3));

  SubscriptionFilter above =
      SubscriptionFilter::WatchAll(0, NotifyPredicate::kValueAtLeast,
                                   kInfWeight);
  EXPECT_TRUE(above.Matches(1, 1, kInfWeight));  // "fell out of reach"
  EXPECT_FALSE(above.Matches(1, 1, 3));

  SubscriptionFilter delta =
      SubscriptionFilter::WatchAll(0, NotifyPredicate::kMinDelta, 10);
  EXPECT_TRUE(delta.Matches(1, 5, 15));
  EXPECT_TRUE(delta.Matches(1, 15, 5));  // |delta| is symmetric
  EXPECT_FALSE(delta.Matches(1, 5, 14));
}

//===--- LastModified determinism (satellite) -------------------------------//

// The per-thread modified_buf_ concat order used to depend on worker
// scheduling; notifications (and history) need a deterministic order. Pin:
// LastModified is sorted by vertex id even when a wide pool fans the
// invalidation, and the records match the single-threaded run.
TEST(LastModifiedOrderTest, SortedAndThreadCountInvariant) {
  constexpr uint64_t kLeaves = 512;
  auto run = [&](size_t threads) {
    ThreadPool::ResetGlobal(threads);
    std::vector<ModifiedRecord> records;
    {
      RisGraph<> sys(2 + kLeaves);
      size_t bfs = sys.AddAlgorithm<Bfs>(0);
      sys.InitializeResults();
      sys.InsEdge(0, 1);  // hub
      for (uint64_t leaf = 0; leaf < kLeaves; ++leaf) {
        sys.InsEdge(1, 2 + leaf);
      }
      // Deleting the tree edge to the hub invalidates the whole subtree:
      // a large modification set produced by parallel repair.
      sys.DelEdge(0, 1);
      records = sys.algorithm(bfs).LastModified();
    }
    ThreadPool::ResetGlobal(0);
    return records;
  };

  std::vector<ModifiedRecord> wide = run(8);
  ASSERT_EQ(wide.size(), 1 + kLeaves);  // hub + every leaf
  EXPECT_TRUE(std::is_sorted(wide.begin(), wide.end(),
                             [](const ModifiedRecord& a,
                                const ModifiedRecord& b) {
                               return a.vertex < b.vertex;
                             }));

  std::vector<ModifiedRecord> narrow = run(1);
  ASSERT_EQ(narrow.size(), wide.size());
  for (size_t i = 0; i < wide.size(); ++i) {
    EXPECT_EQ(wide[i].vertex, narrow[i].vertex) << i;
    EXPECT_EQ(wide[i].old_value, narrow[i].old_value) << i;
  }
}

//===--- In-process end-to-end ----------------------------------------------//

class SubscribeServiceTest : public ::testing::Test {
 protected:
  static constexpr uint64_t kVertices = 64;

  void Build(SubscriptionRegistry::Options reg_options = {},
             ServiceOptions options = {}) {
    sys_ = std::make_unique<RisGraph<>>(kVertices);
    bfs_ = sys_->AddAlgorithm<Bfs>(0);
    sys_->InitializeResults();
    registry_ = std::make_unique<SubscriptionRegistry>(reg_options);
    publisher_ = std::make_unique<ChangePublisher>(*registry_);
    service_ = std::make_unique<RisGraphService<>>(*sys_, options);
    service_->AttachPublisher(publisher_.get());
    client_ = std::make_unique<SessionClient<>>(*sys_, service_->pipeline());
    service_->Start();
  }

  void TearDown() override {
    client_.reset();  // closes its registry subscriber
    if (service_ != nullptr) service_->Stop();
  }

  std::unique_ptr<RisGraph<>> sys_;
  size_t bfs_ = 0;
  std::unique_ptr<SubscriptionRegistry> registry_;
  std::unique_ptr<ChangePublisher> publisher_;
  std::unique_ptr<RisGraphService<>> service_;
  std::unique_ptr<SessionClient<>> client_;
};

TEST_F(SubscribeServiceTest, WatchAllMatchesHistoryModificationSets) {
  Build();
  uint64_t sub = client_->Subscribe(SubscriptionFilter::WatchAll(bfs_));
  ASSERT_NE(sub, 0u);

  // A little chain-growing workload with plenty of unsafe updates.
  std::vector<VersionId> versions;
  for (uint64_t i = 0; i + 1 < 16; ++i) {
    versions.push_back(client_->InsEdge(i, i + 1));  // extends the BFS tree
  }
  versions.push_back(client_->DelEdge(3, 4));  // cuts the tree: big set
  // Blocking submits are answered at commit, which is also when changes are
  // staged — WaitIdle is therefore a full drain barrier here (and the
  // service stays up: the history cross-checks below need its read lanes).
  publisher_->WaitIdle();

  std::vector<Notification> got;
  client_->PollNotifications(&got);
  ASSERT_FALSE(got.empty());

  // Every notification must agree with the history store: new_value is the
  // value at its version, old_value the value just before, and the per-
  // version vertex sets must be exactly GetModified(version).
  VersionId cur = 0;
  client_->GetCurrentVersion(&cur);
  std::vector<VertexId> expected;
  std::vector<VertexId> seen;
  for (VersionId ver = 1; ver <= cur; ++ver) {
    expected.clear();
    ASSERT_TRUE(client_->GetModified(bfs_, ver, &expected));
    std::sort(expected.begin(), expected.end());
    seen.clear();
    for (const Notification& n : got) {
      if (n.version != ver) continue;
      EXPECT_EQ(n.subscription_id, sub);
      EXPECT_EQ(n.algo, bfs_);
      seen.push_back(n.vertex);
      uint64_t at = 0;
      ASSERT_TRUE(client_->GetValueAt(bfs_, ver, n.vertex, &at));
      EXPECT_EQ(n.new_value, at) << "v" << ver << " vertex " << n.vertex;
      uint64_t before = 0;
      ASSERT_TRUE(client_->GetValueAt(bfs_, ver - 1, n.vertex, &before));
      EXPECT_EQ(n.old_value, before);
    }
    std::sort(seen.begin(), seen.end());
    EXPECT_EQ(seen, expected) << "notification set diverged at v" << ver;
  }
  // Notifications only exist for versions <= current (no phantom commits).
  for (const Notification& n : got) {
    EXPECT_GE(n.version, 1u);
    EXPECT_LE(n.version, cur);
  }
}

TEST_F(SubscribeServiceTest, VertexSetAndThresholdFiltersApply) {
  Build();
  uint64_t watch9 = client_->Subscribe(
      SubscriptionFilter::WatchVertices(bfs_, {9}));
  uint64_t within2 = client_->Subscribe(SubscriptionFilter::WatchAll(
      bfs_, NotifyPredicate::kValueAtMost, 2));
  ASSERT_NE(watch9, 0u);
  ASSERT_NE(within2, 0u);

  for (uint64_t i = 0; i + 1 < 12; ++i) {
    client_->InsEdge(i, i + 1);
  }
  publisher_->WaitIdle();

  std::vector<Notification> got;
  client_->PollNotifications(&got);
  ASSERT_FALSE(got.empty());
  bool saw_watch9 = false;
  for (const Notification& n : got) {
    if (n.subscription_id == watch9) {
      EXPECT_EQ(n.vertex, 9u);
      saw_watch9 = true;
    } else {
      ASSERT_EQ(n.subscription_id, within2);
      EXPECT_LE(n.new_value, 2u);
    }
  }
  EXPECT_TRUE(saw_watch9);

  // Invalid subscriptions are refused with 0.
  EXPECT_EQ(client_->Subscribe(SubscriptionFilter::WatchAll(99)), 0u);
  EXPECT_EQ(client_->Subscribe(SubscriptionFilter::WatchVertices(
                bfs_, {kVertices + 5})),
            0u);
  EXPECT_EQ(client_->Subscribe(SubscriptionFilter::WatchVertices(bfs_, {})),
            0u);
  EXPECT_FALSE(client_->Unsubscribe(123456));
  EXPECT_TRUE(client_->Unsubscribe(watch9));
  EXPECT_FALSE(client_->Unsubscribe(watch9));  // already gone
}

// Satellite: a slow subscriber with a full delivery queue receives the
// latest value per vertex instead of an unbounded backlog, and the ingest
// pipeline is unaffected (every submitted update completes).
TEST_F(SubscribeServiceTest, OverloadCoalescesToLatestValueWithoutBackpressure) {
  SubscriptionRegistry::Options reg;
  reg.queue_capacity = 8;  // overload immediately
  Build(reg);
  uint64_t sub = client_->Subscribe(SubscriptionFilter::WatchAll(bfs_));
  ASSERT_NE(sub, 0u);

  // Hammer two vertices with alternating unsafe updates and never poll:
  // the subscriber falls behind by construction.
  constexpr uint64_t kRounds = 400;
  for (uint64_t i = 0; i < kRounds; ++i) {
    ASSERT_EQ(client_->SubmitAsync(Update::InsertEdge(0, 1, 1)),
              ClientStatus::kOk);
    ASSERT_EQ(client_->SubmitAsync(Update::DeleteEdge(0, 1, 1)),
              ClientStatus::kOk);
    ASSERT_EQ(client_->SubmitAsync(Update::InsertEdge(1, 2, 1)),
              ClientStatus::kOk);
  }
  FlushResult fr = client_->Flush();
  ASSERT_TRUE(fr.ok);
  publisher_->WaitIdle();

  // Counter-asserted: the pipeline completed every update — a slow
  // subscriber coalesces, it never throttles ingest.
  EXPECT_EQ(service_->completed_ops(), 3 * kRounds);
  EXPECT_GT(registry_->coalesced(), 0u);

  // Bounded delivery: capacity + at most one latest entry per touched
  // vertex, NOT a 1200-update backlog.
  std::vector<Notification> got;
  client_->PollNotifications(&got);
  ASSERT_FALSE(got.empty());
  EXPECT_LE(got.size(), reg.queue_capacity + kVertices);

  // The last notification per vertex carries the CURRENT committed value.
  for (auto it = got.rbegin(); it != got.rend(); ++it) {
    bool is_last = true;
    for (auto jt = got.rbegin(); jt != it; ++jt) {
      if (jt->vertex == it->vertex) {
        is_last = false;
        break;
      }
    }
    if (!is_last) continue;
    uint64_t now = 0;
    ASSERT_TRUE(client_->GetValue(bfs_, it->vertex, &now));
    EXPECT_EQ(it->new_value, now) << "vertex " << it->vertex;
  }
}

//===--- Determinism & shard-count invariance --------------------------------//

/// Drives one workload against a publisher-attached pipeline and returns
/// the full notification stream in deterministic drain order, plus the
/// final version. Subscriptions: watch-all on BFS, a vertex set on SSSP,
/// and a threshold standing query on BFS — all three must replay
/// bit-identically at any shard count and over either transport.
struct NotifyOutcome {
  std::vector<Notification> stream;
  VersionId version = 0;
};

void SubscribeTrio(IClient& client, size_t bfs, size_t sssp,
                   uint64_t num_vertices) {
  ASSERT_NE(client.Subscribe(SubscriptionFilter::WatchAll(bfs)), 0u);
  std::vector<VertexId> watched;
  for (VertexId v = 0; v < num_vertices; v += 7) watched.push_back(v);
  ASSERT_NE(client.Subscribe(SubscriptionFilter::WatchVertices(sssp, watched)),
            0u);
  ASSERT_NE(client.Subscribe(SubscriptionFilter::WatchAll(
                bfs, NotifyPredicate::kValueAtLeast, kInfWeight)),
            0u);
}

void DriveStream(IClient& client, const StreamWorkload& wl) {
  for (const Update& u : wl.updates) {
    ASSERT_EQ(client.SubmitAsync(u), ClientStatus::kOk);
  }
  ASSERT_TRUE(client.Flush().ok);
  // A blocking tail pins the cross-lane order (pipelined lane drained
  // first), exercising txn commits through the notification path too.
  for (uint64_t t = 0; t < 8; ++t) {
    VertexId a = (5 * t) % wl.num_vertices;
    VertexId b = (5 * t + 2) % wl.num_vertices;
    std::vector<Update> txn = {Update::InsertEdge(a, b, 1 + t % 3),
                               Update::DeleteEdge(a, b, 1 + t % 3),
                               Update::InsertEdge(b, a, 2)};
    client.SubmitTxn(txn);
  }
}

template <typename Store>
NotifyOutcome DriveInProcess(const StreamWorkload& wl, uint32_t store_shards,
                             size_t ingest_shards) {
  RisGraphOptions opt;
  opt.store.partition.num_shards = store_shards;
  RisGraph<Store> sys(wl.num_vertices, opt);
  size_t bfs = sys.template AddAlgorithm<Bfs>(0);
  size_t sssp = sys.template AddAlgorithm<Sssp>(0);
  sys.LoadGraph(wl.preload);
  sys.InitializeResults();

  SubscriptionRegistry::Options reg;
  reg.queue_capacity = 1 << 20;  // determinism run: no coalescing
  SubscriptionRegistry registry(reg);
  ChangePublisher publisher(registry);
  ServiceOptions so;
  so.ingest_shards = ingest_shards;
  EpochPipeline<Store> pipeline(sys, so);
  pipeline.AttachPublisher(&publisher);
  NotifyOutcome out;
  {
    SessionClient<Store> client(sys, pipeline);
    pipeline.Start();
    SubscribeTrio(client, bfs, sssp, wl.num_vertices);
    DriveStream(client, wl);
    pipeline.Stop();
    publisher.WaitIdle();
    client.PollNotifications(&out.stream);
    out.version = sys.GetCurrentVersion();
  }
  return out;
}

NotifyOutcome DriveOverRpc(const StreamWorkload& wl, size_t ingest_shards) {
  RisGraph<> sys(wl.num_vertices);
  size_t bfs = sys.AddAlgorithm<Bfs>(0);
  size_t sssp = sys.AddAlgorithm<Sssp>(0);
  sys.LoadGraph(wl.preload);
  sys.InitializeResults();

  SubscriptionRegistry::Options reg;
  reg.queue_capacity = 1 << 20;
  SubscriptionRegistry registry(reg);
  ChangePublisher publisher(registry);
  ServiceOptions so;
  so.ingest_shards = ingest_shards;
  RisGraphService<> service(sys, so);
  service.AttachPublisher(&publisher);
  std::string path = "/tmp/risgraph_sub_inv_" + std::to_string(::getpid()) +
                     "_" + std::to_string(ingest_shards) + ".sock";
  RpcServer server(sys, service, path);
  EXPECT_TRUE(server.Start(4));
  service.Start();

  NotifyOutcome out;
  {
    RpcClient client(/*window=*/256);
    EXPECT_TRUE(client.Connect(path));
    EXPECT_EQ(client.protocol_version(), rpc::kProtocolVersion);
    SubscribeTrio(client, bfs, sssp, wl.num_vertices);
    DriveStream(client, wl);
    // Remote delivery is asynchronous: drain until the stream goes quiet
    // (the publisher is idle once the pipeline drained, so "quiet" is
    // bounded by push latency, not by computation).
    publisher.WaitIdle();
    while (client.WaitNotification(200000)) {
      client.PollNotifications(&out.stream);
    }
    out.version = sys.GetCurrentVersion();
    client.Close();
  }
  server.Stop();
  service.Stop();
  return out;
}

TEST(NotificationInvarianceTest, BitIdenticalStreamsAcrossShardsAndTransports) {
  // 1-thread pool: as in test_shard.cc, pool interleaving is the baseline's
  // only nondeterminism; with it pinned, every config must agree bit for
  // bit — including the pushed notification streams.
  ThreadPool::ResetGlobal(1);

  RmatParams rmat;
  rmat.scale = 7;
  rmat.num_edges = 1200;
  rmat.max_weight = 4;
  rmat.seed = 5;
  StreamOptions so;
  so.preload_fraction = 0.5;
  so.insert_fraction = 0.6;
  so.seed = 13;
  StreamWorkload wl =
      BuildStream(uint64_t{1} << rmat.scale, GenerateRmat(rmat), so);

  NotifyOutcome base = DriveInProcess<DefaultGraphStore>(wl, 1, 1);
  ASSERT_FALSE(base.stream.empty());
  ASSERT_GT(base.version, 0u);

  // Ingest-ring sharding (same store, different epoch packing).
  for (size_t ingest_shards : {2u, 4u}) {
    SCOPED_TRACE("ingest_shards=" + std::to_string(ingest_shards));
    NotifyOutcome got =
        DriveInProcess<DefaultGraphStore>(wl, 1, ingest_shards);
    EXPECT_EQ(got.version, base.version);
    ASSERT_EQ(got.stream, base.stream);
  }
  // Store partitioning (PR 4's shard layer under the same pipeline).
  for (uint32_t shards : {1u, 2u, 4u}) {
    SCOPED_TRACE("store_shards=" + std::to_string(shards));
    NotifyOutcome got =
        DriveInProcess<ShardedGraphStore<>>(wl, shards, shards);
    EXPECT_EQ(got.version, base.version);
    ASSERT_EQ(got.stream, base.stream);
  }
  // The RPC transport: same IClient surface, same streams.
  for (size_t ingest_shards : {1u, 2u, 4u}) {
    SCOPED_TRACE("rpc ingest_shards=" + std::to_string(ingest_shards));
    NotifyOutcome got = DriveOverRpc(wl, ingest_shards);
    EXPECT_EQ(got.version, base.version);
    ASSERT_EQ(got.stream, base.stream);
  }

  ThreadPool::ResetGlobal(0);
}

//===--- RPC specifics --------------------------------------------------------//

class SubscribeRpcTest : public ::testing::Test {
 protected:
  static constexpr uint64_t kVertices = 32;

  void SetUp() override {
    socket_path_ = "/tmp/risgraph_sub_rpc_" +
                   std::to_string(reinterpret_cast<uintptr_t>(this)) + ".sock";
    sys_ = std::make_unique<RisGraph<>>(kVertices);
    bfs_ = sys_->AddAlgorithm<Bfs>(0);
    sys_->InitializeResults();
    registry_ = std::make_unique<SubscriptionRegistry>();
    publisher_ = std::make_unique<ChangePublisher>(*registry_);
    service_ = std::make_unique<RisGraphService<>>(*sys_);
    service_->AttachPublisher(publisher_.get());
    server_ = std::make_unique<RpcServer>(*sys_, *service_, socket_path_);
    ASSERT_TRUE(server_->Start(8));
    service_->Start();
  }

  void TearDown() override {
    server_->Stop();
    service_->Stop();
  }

  std::string socket_path_;
  std::unique_ptr<RisGraph<>> sys_;
  size_t bfs_ = 0;
  std::unique_ptr<SubscriptionRegistry> registry_;
  std::unique_ptr<ChangePublisher> publisher_;
  std::unique_ptr<RisGraphService<>> service_;
  std::unique_ptr<RpcServer> server_;
};

TEST_F(SubscribeRpcTest, PushedNotificationsReachTheRemoteClient) {
  RpcClient client;
  ASSERT_TRUE(client.Connect(socket_path_));
  ASSERT_GE(client.protocol_version(), rpc::kSubscriptionVersion);
  uint64_t sub = client.Subscribe(SubscriptionFilter::WatchAll(bfs_));
  ASSERT_NE(sub, 0u);

  VersionId v1 = client.InsEdge(0, 1);
  ASSERT_NE(v1, kInvalidVersion);
  std::vector<Notification> got;
  // Push-based: the notification arrives without any further request.
  ASSERT_TRUE(client.WaitNotification(2'000'000));
  client.PollNotifications(&got);
  ASSERT_FALSE(got.empty());
  EXPECT_EQ(got[0].subscription_id, sub);
  EXPECT_EQ(got[0].algo, bfs_);
  EXPECT_EQ(got[0].version, v1);
  EXPECT_EQ(got[0].vertex, 1u);
  EXPECT_EQ(got[0].old_value, kInfWeight);
  EXPECT_EQ(got[0].new_value, 1u);
  // The counter bumps after the socket write; the client can race ahead of
  // it by a few instructions — poll briefly.
  for (int spin = 0; spin < 1000 && server_->notifications_pushed() == 0;
       ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_GE(server_->notifications_pushed(), 1u);

  // Unsubscribe stops the stream; in-flight pushes (if any) are dropped
  // client-side, and the connection stays fully usable.
  ASSERT_TRUE(client.Unsubscribe(sub));
  EXPECT_NE(client.InsEdge(1, 2), kInvalidVersion);
  got.clear();
  EXPECT_FALSE(client.WaitNotification(50'000));
  EXPECT_EQ(client.PollNotifications(&got), 0u);
  EXPECT_TRUE(client.Ping());

  // Semantically invalid subscriptions answer kError, not a dropped
  // connection.
  EXPECT_EQ(client.Subscribe(SubscriptionFilter::WatchAll(7)), 0u);
  EXPECT_TRUE(client.Ping());
}

TEST_F(SubscribeRpcTest, PlainV2PeerKeepsWorkingAndSeesNoV21Surface) {
  using namespace testutil;
  // An old client negotiates 2 and operates exactly as before.
  int fd = RawConnect(socket_path_);
  ASSERT_GE(fd, 0);
  ASSERT_EQ(HandshakeRaw(fd, 2, 2), 2u);
  std::vector<uint8_t> req;
  rpc::Writer w(req);
  rpc::WriteRequestHeader(w, 42, rpc::Op::kInsEdge);
  w.U64(0);
  w.U64(1);
  w.U64(1);
  ASSERT_TRUE(SendFrameRaw(fd, req));
  std::vector<uint8_t> resp;
  ASSERT_TRUE(ReadFrameRaw(fd, &resp));
  ASSERT_GE(resp.size(), 9u);
  EXPECT_EQ(resp[8], static_cast<uint8_t>(rpc::Status::kOk));

  // The v2.1 opcodes are as unparseable for it as on an old server:
  // kBadRequest, then close — never a silent half-support.
  req.clear();
  rpc::Writer w2(req);
  rpc::WriteRequestHeader(w2, 43, rpc::Op::kSubscribe);
  w2.U64(bfs_);
  w2.U8(1);
  w2.U8(0);
  w2.U64(0);
  w2.U32(0);
  ASSERT_TRUE(SendFrameRaw(fd, req));
  ASSERT_TRUE(ReadFrameRaw(fd, &resp));
  ASSERT_EQ(resp.size(), 9u);
  EXPECT_EQ(resp[8], static_cast<uint8_t>(rpc::Status::kBadRequest));
  uint8_t byte;
  EXPECT_EQ(::read(fd, &byte, 1), 0);
  ::close(fd);

  // Meanwhile v2.1 peers get the full surface on the same server.
  RpcClient client;
  ASSERT_TRUE(client.Connect(socket_path_));
  EXPECT_NE(client.Subscribe(SubscriptionFilter::WatchAll(bfs_)), 0u);
}

TEST_F(SubscribeRpcTest, UnsubscribeRaceNeverWedgesEitherSide) {
  RpcClient subscriber;
  ASSERT_TRUE(subscriber.Connect(socket_path_));
  RpcClient writer;
  ASSERT_TRUE(writer.Connect(socket_path_));

  // Churn subscriptions while a second connection streams updates: pushes
  // racing kUnsubscribe must be dropped (possibly counted stray), never
  // desync, hang, or crash either side.
  std::atomic<bool> done{false};
  std::thread stream([&] {
    uint64_t i = 0;
    while (!done.load(std::memory_order_acquire)) {
      writer.InsEdge(i % kVertices, (i + 1) % kVertices);
      writer.DelEdge(i % kVertices, (i + 1) % kVertices);
      ++i;
    }
  });
  for (int round = 0; round < 40; ++round) {
    uint64_t sub =
        subscriber.Subscribe(SubscriptionFilter::WatchAll(bfs_));
    ASSERT_NE(sub, 0u);
    subscriber.WaitNotification(2000);
    std::vector<Notification> drain;
    subscriber.PollNotifications(&drain);
    ASSERT_TRUE(subscriber.Unsubscribe(sub));
  }
  done.store(true, std::memory_order_release);
  stream.join();
  EXPECT_TRUE(subscriber.Ping());
  EXPECT_TRUE(writer.Ping());
  EXPECT_TRUE(subscriber.IsConnected());
}

}  // namespace
}  // namespace risgraph
