#include <gtest/gtest.h>

#include <set>

#include "workload/datasets.h"
#include "workload/rmat.h"
#include "workload/road.h"
#include "workload/update_stream.h"

namespace risgraph {
namespace {

TEST(Rmat, DeterministicAndWellFormed) {
  RmatParams p;
  p.scale = 10;
  p.num_edges = 5000;
  p.seed = 11;
  auto a = GenerateRmat(p);
  auto b = GenerateRmat(p);
  EXPECT_EQ(a.size(), 5000u);
  EXPECT_EQ(a, b);
  for (const Edge& e : a) {
    EXPECT_LT(e.src, 1024u);
    EXPECT_LT(e.dst, 1024u);
    EXPECT_NE(e.src, e.dst);  // no self-loops
    EXPECT_GE(e.weight, 1u);
    EXPECT_LE(e.weight, p.max_weight);
  }
}

TEST(Rmat, PowerLawSkew) {
  RmatParams p;
  p.scale = 12;
  p.num_edges = 16 * 4096;
  auto edges = GenerateRmat(p);
  std::vector<uint64_t> outdeg(4096, 0);
  for (const Edge& e : edges) outdeg[e.src]++;
  uint64_t max_deg = 0;
  uint64_t nonzero = 0;
  for (uint64_t d : outdeg) {
    max_deg = std::max(max_deg, d);
    if (d > 0) nonzero++;
  }
  // Skew: the hottest vertex is far above the mean, and a healthy share of
  // vertices have no edges at all.
  EXPECT_GT(max_deg, 10 * (edges.size() / nonzero));
  EXPECT_LT(nonzero, 4096u);
}

TEST(Road, GridStructure) {
  RoadParams p;
  p.side = 16;
  p.diagonal_prob = 0.0;
  auto edges = GenerateRoad(p);
  // A pure grid: 2 * side*(side-1) undirected roads, emitted both ways.
  EXPECT_EQ(edges.size(), 2u * 2 * 16 * 15);
  std::vector<uint64_t> deg(256, 0);
  for (const Edge& e : edges) {
    deg[e.src]++;
    EXPECT_NE(e.src, e.dst);
  }
  for (uint64_t d : deg) {
    EXPECT_GE(d, 2u);  // corners
    EXPECT_LE(d, 4u);  // interior: bounded degree, no hubs
  }
}

TEST(UpdateStream, PaperDefaultSplit) {
  RmatParams p;
  p.scale = 10;
  p.num_edges = 10000;
  auto edges = GenerateRmat(p);
  StreamOptions so;  // defaults: 90% preload, 50% insertions
  StreamWorkload wl = BuildStream(1024, edges, so);
  EXPECT_EQ(wl.preload.size(), 9000u);
  EXPECT_FALSE(wl.updates.empty());
  uint64_t ins = 0;
  uint64_t del = 0;
  for (const Update& u : wl.updates) {
    if (u.kind == UpdateKind::kInsertEdge) {
      ins++;
    } else {
      del++;
    }
  }
  // Alternating at 50%: insertion share within a few percent.
  double share = static_cast<double>(ins) / (ins + del);
  EXPECT_NEAR(share, 0.5, 0.05);
  // Inserted edges are exactly the non-preloaded tail.
  std::set<std::tuple<VertexId, VertexId, Weight>> tail;
  for (size_t i = 9000; i < edges.size(); ++i) {
    tail.insert({edges[i].src, edges[i].dst, edges[i].weight});
  }
  for (const Update& u : wl.updates) {
    if (u.kind == UpdateKind::kInsertEdge) {
      EXPECT_TRUE(tail.contains({u.edge.src, u.edge.dst, u.edge.weight}));
    }
  }
}

TEST(UpdateStream, InsertFractionRespected) {
  RmatParams p;
  p.scale = 10;
  p.num_edges = 8000;
  auto edges = GenerateRmat(p);
  for (double frac : {0.0, 0.25, 0.75, 1.0}) {
    StreamOptions so;
    so.preload_fraction = 0.5;
    so.insert_fraction = frac;
    so.max_updates = 2000;
    StreamWorkload wl = BuildStream(1024, edges, so);
    uint64_t ins = 0;
    for (const Update& u : wl.updates) {
      if (u.kind == UpdateKind::kInsertEdge) ins++;
    }
    double share = static_cast<double>(ins) / wl.updates.size();
    EXPECT_NEAR(share, frac, 0.05) << "frac=" << frac;
  }
}

TEST(UpdateStream, DeletionsComeFromPreload) {
  RmatParams p;
  p.scale = 9;
  p.num_edges = 4000;
  auto edges = GenerateRmat(p);
  StreamWorkload wl = BuildStream(512, edges, {});
  std::set<std::tuple<VertexId, VertexId, Weight>> loaded;
  for (const Edge& e : wl.preload) {
    loaded.insert({e.src, e.dst, e.weight});
  }
  for (const Update& u : wl.updates) {
    if (u.kind == UpdateKind::kDeleteEdge) {
      EXPECT_TRUE(loaded.contains({u.edge.src, u.edge.dst, u.edge.weight}));
    }
  }
}

TEST(UpdateStream, PackTransactions) {
  std::vector<Update> updates(103, Update::InsertEdge(0, 1, 1));
  auto txns = PackTransactions(updates, 8);
  EXPECT_EQ(txns.size(), 12u);  // 96 packed, 7-long tail dropped
  for (const auto& t : txns) EXPECT_EQ(t.size(), 8u);
}

TEST(Datasets, RegistryCoversTable3) {
  EXPECT_EQ(AllDatasetSpecs().size(), 11u);  // 10 power-law + road
  const DatasetSpec& tt = FindDatasetSpec("twitter_sim");
  EXPECT_EQ(tt.kind, GraphKind::kPowerLaw);
  Dataset d = LoadDataset("hepph_sim");
  EXPECT_GT(d.edges.size(), 0u);
  EXPECT_EQ(d.num_vertices, uint64_t{1} << d.spec.scale);
  const DatasetSpec& road = FindDatasetSpec("usa_road");
  EXPECT_EQ(road.kind, GraphKind::kRoad);
}

}  // namespace
}  // namespace risgraph
