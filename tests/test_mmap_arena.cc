#include "storage/mmap_arena.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "common/random.h"
#include "core/algorithm_api.h"
#include "core/incremental_engine.h"
#include "core/reference.h"
#include "storage/outofcore.h"
#include "workload/rmat.h"
#include "workload/update_stream.h"

namespace risgraph {
namespace {

class MmapArenaTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "risgraph_arena_" +
            std::to_string(reinterpret_cast<uintptr_t>(this));
    std::remove(path_.c_str());
  }
  void TearDown() override { std::remove(path_.c_str()); }
  std::string path_;
};

TEST_F(MmapArenaTest, AllocatesAlignedWithinCapacity) {
  MmapArena arena;
  ASSERT_TRUE(arena.Open(path_, 1 << 20));
  void* a = arena.Allocate(100, 64);
  void* b = arena.Allocate(100, 64);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(a) % 64, 0u);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(b) % 64, 0u);
  EXPECT_GE(reinterpret_cast<uint8_t*>(b),
            reinterpret_cast<uint8_t*>(a) + 100);
  // The memory is writable and readable.
  std::memset(a, 0xab, 100);
  EXPECT_EQ(reinterpret_cast<uint8_t*>(a)[99], 0xab);
  EXPECT_GE(arena.allocated(), 200u);
}

TEST_F(MmapArenaTest, ExhaustionReturnsNull) {
  MmapArena arena;
  ASSERT_TRUE(arena.Open(path_, 4096));
  EXPECT_NE(arena.Allocate(2048), nullptr);
  EXPECT_NE(arena.Allocate(2000), nullptr);
  EXPECT_EQ(arena.Allocate(2048), nullptr);  // over capacity now
  EXPECT_NE(arena.Allocate(16), nullptr);    // small still fits
}

TEST_F(MmapArenaTest, OpenFailsOnBadPath) {
  MmapArena arena;
  EXPECT_FALSE(arena.Open("/nonexistent/dir/arena.bin", 4096));
  EXPECT_FALSE(arena.IsOpen());
  EXPECT_EQ(arena.Allocate(16), nullptr);
}

TEST_F(MmapArenaTest, ArenaVectorBehavesLikeVector) {
  MmapArena arena;
  ASSERT_TRUE(arena.Open(path_, 8 << 20));
  ScopedEdgeArena scope(&arena);

  ArenaVector<uint64_t> v;
  std::vector<uint64_t> ref;
  Rng rng(11);
  for (int i = 0; i < 5000; ++i) {
    uint64_t x = rng.Next();
    v.push_back(x);
    ref.push_back(x);
    if (i % 97 == 0) {
      size_t n = rng.NextBounded(v.size() + 1);
      v.resize(n);
      ref.resize(n);
    }
  }
  ASSERT_EQ(v.size(), ref.size());
  for (size_t i = 0; i < ref.size(); ++i) ASSERT_EQ(v[i], ref[i]) << i;
  // Everything fit in the arena; no heap fallback events.
  EXPECT_GT(arena.allocated(), 0u);
}

TEST_F(MmapArenaTest, ArenaVectorFallsBackToHeapWhenExhausted) {
  MmapArena arena;
  ASSERT_TRUE(arena.Open(path_, 4096));
  ScopedEdgeArena scope(&arena);
  ArenaVector<uint64_t>::reset_heap_fallbacks();

  ArenaVector<uint64_t> v;
  for (uint64_t i = 0; i < 4096; ++i) v.push_back(i);  // 32 KB > 4 KB arena
  for (uint64_t i = 0; i < 4096; ++i) ASSERT_EQ(v[i], i);
  EXPECT_GT(ArenaVector<uint64_t>::heap_fallbacks(), 0u);
}

TEST_F(MmapArenaTest, ArenaVectorMoveTransfersOwnership) {
  ArenaVector<uint64_t> a;  // heap mode (no arena installed)
  a.push_back(7);
  a.push_back(9);
  ArenaVector<uint64_t> b(std::move(a));
  ASSERT_EQ(b.size(), 2u);
  EXPECT_EQ(b[0], 7u);
  EXPECT_EQ(b[1], 9u);
  EXPECT_EQ(a.size(), 0u);  // NOLINT(bugprone-use-after-move): spec'd empty
}

// The paper's out-of-core configuration must be exactly as correct as the
// in-memory one: full differential test against the reference recompute.
TEST_F(MmapArenaTest, OutOfCoreStoreMatchesRecompute) {
  MmapArena arena;
  ASSERT_TRUE(arena.Open(path_, 64 << 20));
  ScopedEdgeArena scope(&arena);

  RmatParams rp;
  rp.scale = 8;
  rp.num_edges = 2000;
  rp.max_weight = 8;
  rp.seed = 77;
  auto edges = GenerateRmat(rp);
  StreamOptions so;
  so.preload_fraction = 0.7;
  StreamWorkload wl = BuildStream(uint64_t{1} << rp.scale, edges, so);

  StoreOptions sopt;
  sopt.index_threshold = 8;  // exercise the BTree index paths
  OutOfCoreGraphStore store(wl.num_vertices, sopt);
  for (const Edge& e : wl.preload) store.InsertEdge(e);
  IncrementalEngine<Wcc, OutOfCoreGraphStore> engine(store, 0);

  size_t step = 0;
  for (const Update& u : wl.updates) {
    if (u.kind == UpdateKind::kInsertEdge) {
      store.InsertEdge(u.edge);
      engine.OnInsert(u.edge);
    } else {
      DeleteResult r = store.DeleteEdge(u.edge);
      engine.OnDelete(u.edge, r);
    }
    if (++step % 128 == 0 || step == wl.updates.size()) {
      auto ref = ReferenceCompute<Wcc>(store, 0);
      for (VertexId v = 0; v < wl.num_vertices; ++v) {
        ASSERT_EQ(engine.Value(v), ref[v]) << "v=" << v << " step=" << step;
      }
    }
    if (step >= 600) break;
  }
  EXPECT_GT(arena.allocated(), 0u);
  // The backing file actually carries the data (sparse but extended).
  std::FILE* f = std::fopen(path_.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 0, SEEK_END);
  EXPECT_EQ(std::ftell(f), 64 << 20);
  std::fclose(f);
}

}  // namespace
}  // namespace risgraph
