// The incremental engine must be correct over EVERY store configuration of
// Table 8 (IA/IO x Hash/BTree/ART) and for the extra monotonic algorithms
// (Reachability, MaxLabel) — the Algorithm API contract says any conforming
// trait works unchanged.

#include <gtest/gtest.h>

#include <string>

#include "core/algorithm_api.h"
#include "core/incremental_engine.h"
#include "core/reference.h"
#include "index/art_index.h"
#include "index/btree_index.h"
#include "index/hash_index.h"
#include "storage/graph_store.h"
#include "workload/rmat.h"
#include "workload/update_stream.h"

namespace risgraph {
namespace {

template <typename Store, typename Algo>
void RunStream(uint64_t seed) {
  RmatParams rp;
  rp.scale = 8;
  rp.num_edges = 1200;
  rp.max_weight = 6;
  rp.seed = seed;
  auto edges = GenerateRmat(rp);
  StreamOptions so;
  so.preload_fraction = 0.7;
  so.seed = seed + 9;
  StreamWorkload wl = BuildStream(uint64_t{1} << rp.scale, edges, so);

  // Small index threshold so the indexed code paths actually run.
  StoreOptions sopt;
  sopt.index_threshold = 8;
  Store store(wl.num_vertices, sopt);
  for (const Edge& e : wl.preload) store.InsertEdge(e);
  IncrementalEngine<Algo, Store> engine(store, 0);

  size_t step = 0;
  for (const Update& u : wl.updates) {
    if (u.kind == UpdateKind::kInsertEdge) {
      store.InsertEdge(u.edge);
      engine.OnInsert(u.edge);
    } else {
      DeleteResult r = store.DeleteEdge(u.edge);
      engine.OnDelete(u.edge, r);
    }
    if (++step % 128 == 0 || step == wl.updates.size()) {
      auto ref = ReferenceCompute<Algo>(store, 0);
      for (VertexId v = 0; v < wl.num_vertices; ++v) {
        ASSERT_EQ(engine.Value(v), ref[v])
            << Algo::Name() << " v=" << v << " step=" << step;
      }
    }
    if (step >= 512) break;
  }
}

struct StoreParam {
  std::string store;
  std::string algo;
};

class EngineStoreMatrixTest : public ::testing::TestWithParam<StoreParam> {};

template <typename Store>
void DispatchAlgo(const std::string& algo, uint64_t seed) {
  if (algo == "bfs") {
    RunStream<Store, Bfs>(seed);
  } else if (algo == "sssp") {
    RunStream<Store, Sssp>(seed);
  } else if (algo == "wcc") {
    RunStream<Store, Wcc>(seed);
  } else if (algo == "reach") {
    RunStream<Store, Reachability>(seed);
  } else if (algo == "minlabel") {
    RunStream<Store, MinLabel>(seed);
  } else {
    RunStream<Store, MaxLabel>(seed);
  }
}

TEST_P(EngineStoreMatrixTest, IncrementalMatchesRecompute) {
  const StoreParam& p = GetParam();
  const uint64_t seed = 21;
  if (p.store == "ia_hash") {
    DispatchAlgo<GraphStore<HashIndex, false>>(p.algo, seed);
  } else if (p.store == "ia_btree") {
    DispatchAlgo<GraphStore<BTreeIndex, false>>(p.algo, seed);
  } else if (p.store == "ia_art") {
    DispatchAlgo<GraphStore<ArtIndex, false>>(p.algo, seed);
  } else if (p.store == "io_hash") {
    DispatchAlgo<GraphStore<HashIndex, true>>(p.algo, seed);
  } else if (p.store == "io_btree") {
    DispatchAlgo<GraphStore<BTreeIndex, true>>(p.algo, seed);
  } else {
    DispatchAlgo<GraphStore<ArtIndex, true>>(p.algo, seed);
  }
}

std::vector<StoreParam> MatrixParams() {
  std::vector<StoreParam> params;
  for (const char* store : {"ia_hash", "ia_btree", "ia_art", "io_hash",
                            "io_btree", "io_art"}) {
    for (const char* algo :
         {"bfs", "sssp", "wcc", "reach", "maxlabel", "minlabel"}) {
      params.push_back({store, algo});
    }
  }
  return params;
}

INSTANTIATE_TEST_SUITE_P(
    Table8Matrix, EngineStoreMatrixTest, ::testing::ValuesIn(MatrixParams()),
    [](const ::testing::TestParamInfo<StoreParam>& info) {
      return info.param.store + "_" + info.param.algo;
    });

TEST(Reachability, BasicSemantics) {
  DefaultGraphStore store(5);
  IncrementalEngine<Reachability> engine(store, 0);
  store.InsertEdge(Edge{0, 1, 1});
  engine.OnInsert(Edge{0, 1, 1});
  store.InsertEdge(Edge{1, 2, 1});
  engine.OnInsert(Edge{1, 2, 1});
  EXPECT_EQ(engine.Value(2), 1u);
  EXPECT_EQ(engine.Value(3), 0u);
  // Reachability is insensitive to extra parallel paths: inserting 0 -> 2 is
  // safe (2 is already reachable).
  EXPECT_TRUE(engine.IsInsertSafe(Edge{0, 2, 1}));
  // Cutting the only path unreaches the suffix.
  DeleteResult r = store.DeleteEdge(Edge{0, 1, 1});
  engine.OnDelete(Edge{0, 1, 1}, r);
  EXPECT_EQ(engine.Value(1), 0u);
  EXPECT_EQ(engine.Value(2), 0u);
}

TEST(MinLabel, DirectedPropagationOnly) {
  DefaultGraphStore store(6);
  IncrementalEngine<MinLabel> engine(store, 0);
  // 3 -> 4: the smaller label 3 flows forward along the direction only.
  store.InsertEdge(Edge{3, 4, 1});
  engine.OnInsert(Edge{3, 4, 1});
  EXPECT_EQ(engine.Value(4), 3u);
  EXPECT_EQ(engine.Value(3), 3u);
  // 5 -> 3 does not lower 3 (5 > 3): a safe insertion.
  EXPECT_TRUE(engine.IsInsertSafe(Edge{5, 3, 1}));
  // 0 -> 3 lowers 3 and transitively 4.
  store.InsertEdge(Edge{0, 3, 1});
  engine.OnInsert(Edge{0, 3, 1});
  EXPECT_EQ(engine.Value(3), 0u);
  EXPECT_EQ(engine.Value(4), 0u);
  // Deleting the tree edge restores the original labels.
  DeleteResult r = store.DeleteEdge(Edge{0, 3, 1});
  engine.OnDelete(Edge{0, 3, 1}, r);
  EXPECT_EQ(engine.Value(3), 3u);
  EXPECT_EQ(engine.Value(4), 3u);
}

TEST(MaxLabel, PropagatesLargestId) {
  DefaultGraphStore store(6);
  IncrementalEngine<MaxLabel> engine(store, 0);
  store.InsertEdge(Edge{1, 2, 1});
  engine.OnInsert(Edge{1, 2, 1});
  store.InsertEdge(Edge{2, 5, 1});
  engine.OnInsert(Edge{2, 5, 1});
  for (VertexId v : {1, 2, 5}) EXPECT_EQ(engine.Value(v), 5u) << v;
  EXPECT_EQ(engine.Value(3), 3u);
  // Splitting the component re-labels the detached side downward.
  DeleteResult r = store.DeleteEdge(Edge{2, 5, 1});
  engine.OnDelete(Edge{2, 5, 1}, r);
  EXPECT_EQ(engine.Value(1), 2u);
  EXPECT_EQ(engine.Value(2), 2u);
  EXPECT_EQ(engine.Value(5), 5u);
}

}  // namespace
}  // namespace risgraph
